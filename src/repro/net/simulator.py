"""A microsecond-resolution discrete-event simulator.

The simulator is a classic event-heap design: callbacks are scheduled at
absolute simulated times and executed in order. Ties are broken by insertion
order so that runs are fully deterministic for a given seed.

Every component in the reproduction (links, switch ASICs, state-store
servers, TCP endpoints, the RedPlane protocol engine) is driven by this
loop. Nothing uses wall-clock time.

The simulator also roots the telemetry spine: it owns the run's
:class:`~repro.telemetry.metrics.MetricRegistry` (:attr:`Simulator.metrics`)
and :class:`~repro.telemetry.trace.Tracer` (:attr:`Simulator.tracer`),
which every component publishes through. The historical free-form
``Simulator.counters`` dict survives as a read view over the registry;
direct writes to it are deprecated.

Two schedulers are available behind the same ``schedule`` API: the
default binary heap (entries are ``(time, seq, Event)`` tuples, so
ordering is decided entirely by C tuple comparison and never calls back
into Python), and an opt-in calendar-bucket timer wheel
(``Simulator(scheduler="wheel")``, :mod:`repro.fastpath.wheel`) that the
fast-path subsystem uses for million-flow campaigns. Both produce the
exact same ``(time, seq)`` execution order; ``tests/test_fastpath.py``
cross-checks them event for event.
"""

from __future__ import annotations

import heapq
import itertools
import random
import warnings
from typing import Any, Callable, List, Optional, Tuple

from repro.telemetry import MetricRegistry, Tracer
from repro.telemetry.compat import LegacyCounters


class Event:
    """A scheduled callback.

    Events execute in ``(time, seq)`` order, which makes the run
    deterministic: two events at the same instant fire in the order they
    were scheduled. The ordering itself lives in the scheduler's queue
    entries (plain tuples); ``Event`` is the cancellation handle.
    ``__slots__`` because hot scenarios allocate one per hop.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "origin")

    def __init__(self, time: float, seq: int, fn: Callable[..., None],
                 args: tuple = (), origin: Optional[int] = None) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        #: Root-event rank this event descends from (shard mode only;
        #: ``None`` in ordinary runs). Children inherit it from the event
        #: being executed when they are scheduled, which lets the shard
        #: merge layer order records from different shards globally.
        self.origin = origin

    def cancel(self) -> None:
        """Prevent the event from firing; cancelled events are skipped."""
        self.cancelled = True


class Simulator:
    """Deterministic discrete-event simulator with a single time line.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned :class:`random.Random`. All stochastic
        behaviour (link loss, reordering, workload generation) must draw
        from :attr:`rng` so that a run is reproducible from its seed.
    scheduler:
        ``"heap"`` (default) or ``"wheel"``. The wheel is the fast-path
        scheduler; it executes the identical ``(time, seq)`` order.
    """

    def __init__(
        self,
        seed: int = 0,
        trace_ring: int = 65536,
        scheduler: str = "heap",
    ) -> None:
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()
        #: Sequence number of the most recently scheduled event (-1 when
        #: none yet). Lane batching uses this to prove no event was
        #: scheduled between two candidate same-edge deliveries.
        self.last_seq = -1
        self._events_executed = 0
        if scheduler == "heap":
            self._wheel = None
        elif scheduler == "wheel":
            from repro.fastpath.wheel import TimerWheel

            self._wheel = TimerWheel()
        else:
            raise ValueError(f"unknown scheduler {scheduler!r}")
        self.scheduler = scheduler
        # Correlation ids for packet-lifecycle spans: allocation order is
        # event-execution order, so ids are deterministic per seed and
        # never touch the RNG or the event heap.
        self._uid_seq = itertools.count(1)
        #: The run's metric registry: every component publishes through it.
        self.metrics = MetricRegistry()
        #: The run's trace ring; timestamps are this clock's simulated time.
        self.tracer = Tracer(clock=lambda: self.now, maxlen=trace_ring)
        #: Legacy per-run counters, now a live view over :attr:`metrics`.
        #: Reads work as before; direct writes raise ``DeprecationWarning``.
        self.counters = LegacyCounters(self.metrics)
        #: The installed :class:`repro.fastpath.runtime.FastPath`, if any.
        #: Components consult this on their hot paths; ``None`` means every
        #: packet takes the reference (slow) path.
        self.fastpath = None
        #: The attached :class:`repro.observe.Observe` bundle (profiler +
        #: heartbeat hooks), or ``None``. When ``None`` the drain loop is
        #: the untouched fast path; when set, :meth:`_drain_observed`
        #: runs instead. Observation reads state, never mutates it.
        self._observe = None
        #: The attached :class:`repro.shard.recorder.ShardRecorder`, or
        #: ``None``. When set, root events (scheduled outside any event)
        #: are assigned monotonically increasing *ranks* and may be
        #: filtered (a shard only injects the flows it owns); children
        #: inherit the executing event's origin. ``None`` costs one
        #: attribute read per schedule and one store per event.
        self.shard_ctx = None
        #: Origin rank of the event currently executing (``None`` between
        #: events). Only consulted when :attr:`shard_ctx` is set.
        self._origin: Optional[int] = None

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, when: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated time ``when``."""
        if when < self.now:
            raise ValueError(
                f"cannot schedule at t={when} before current time t={self.now}"
            )
        origin = self._origin
        if self.shard_ctx is not None and origin is None:
            # Root event: allocate its rank. Ranks advance even for roots
            # this shard does not own (every shard runs the same setup
            # code in lockstep), so rank N means the same root on every
            # shard. Unowned flow injections are returned cancelled and
            # never enter the queue.
            origin, admit = self.shard_ctx.root_origin(fn, args)
            if not admit:
                event = Event(when, next(self._seq), fn, args, origin)
                event.cancelled = True
                return event
        event = Event(when, next(self._seq), fn, args, origin)
        self.last_seq = event.seq
        if self._wheel is None:
            heapq.heappush(self._heap, (when, event.seq, event))
        else:
            self._wheel.push(when, event.seq, event)
        return event

    # -- execution ------------------------------------------------------------

    def _drain(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        exhaust: Optional[str] = "warn",
    ) -> int:
        """The single drain loop behind :meth:`step`, :meth:`run`, and
        :meth:`run_until_idle`.

        Executes due events in ``(time, seq)`` order until the queue is
        empty, the next event lies beyond ``until``, or ``max_events``
        have fired. ``exhaust`` controls what hitting ``max_events`` with
        real work still pending does: ``"warn"`` emits the
        ``sim.max_events_exhausted`` counter plus a ``RuntimeWarning``,
        ``"raise"`` emits the counter and raises, ``None`` is silent
        (used by :meth:`step`). Returns the number of events executed.
        """
        # ``_events_executed`` is bumped per event, not batched at drain
        # exit: callbacks running *inside* the drain (e.g. a workload whose
        # termination condition reads ``sim.events_executed``) must observe
        # a live count, or a self-rescheduling chain never sees progress
        # and spins until the ``max_events`` guard trips.
        if self._observe is not None:
            return self._drain_observed(until, max_events, exhaust)
        executed = 0
        wheel = self._wheel
        try:
            if wheel is None:
                heap = self._heap
                pop = heapq.heappop
                while heap:
                    head = heap[0]
                    event = head[2]
                    if event.cancelled:
                        pop(heap)
                        continue
                    if max_events is not None and executed >= max_events:
                        self._note_exhausted(max_events, exhaust)
                        return executed
                    when = head[0]
                    if until is not None and when > until:
                        break
                    pop(heap)
                    self.now = when
                    self._origin = event.origin
                    event.fn(*event.args)
                    executed += 1
                    self._events_executed += 1
            else:
                pop_due = wheel.pop_due
                while True:
                    if max_events is not None and executed >= max_events:
                        # Same exhaustion semantics as the heap branch: only
                        # report when a live event is actually still pending.
                        if wheel.head() is not None:
                            self._note_exhausted(max_events, exhaust)
                            return executed
                        break
                    entry = pop_due(until)
                    if entry is None:
                        break
                    self.now = entry[0]
                    event = entry[2]
                    self._origin = event.origin
                    event.fn(*event.args)
                    executed += 1
                    self._events_executed += 1
        finally:
            # Code running after the drain (scenario drivers, reporters)
            # is root context again.
            self._origin = None
        return executed

    def _note_exhausted(self, max_events: int, exhaust: Optional[str]) -> None:
        if exhaust is None:
            return
        self.metrics.counter("sim.max_events_exhausted").inc()
        if exhaust == "raise":
            raise RuntimeError(
                f"simulation did not quiesce within {max_events} events"
            )
        warnings.warn(
            f"simulation stopped after max_events={max_events} with events "
            f"still pending (t={self.now})",
            RuntimeWarning,
            stacklevel=3,
        )

    def _drain_observed(
        self,
        until: Optional[float],
        max_events: Optional[int],
        exhaust: Optional[str],
    ) -> int:
        """:meth:`_drain` with the :mod:`repro.observe` hooks applied.

        Identical event-selection semantics (same ``(time, seq)`` order,
        same ``until``/``max_events``/``exhaust`` behaviour) — only the
        per-event epilogue differs: the elapsed wall time since the last
        epilogue is attributed to the finished callback, and the
        heartbeat hook gets a chance to snapshot. Both hooks read
        simulator state; neither mutates it, touches the RNG, or puts
        events on the queue, so an observed run is bit-identical to an
        unobserved one (tests/test_observe.py enforces this).

        Kept separate from :meth:`_drain` so the unobserved hot loop
        pays nothing — not even a dead branch per event.
        """
        observe = self._observe
        profiler = observe.profiler
        tick = profiler.tick if profiler is not None else None
        heartbeat = observe.heartbeat_tick
        executed = 0
        wheel = self._wheel
        if profiler is not None:
            profiler.start()
        try:
            if wheel is None:
                heap = self._heap
                pop = heapq.heappop
                while heap:
                    head = heap[0]
                    event = head[2]
                    if event.cancelled:
                        pop(heap)
                        continue
                    if max_events is not None and executed >= max_events:
                        self._note_exhausted(max_events, exhaust)
                        return executed
                    when = head[0]
                    if until is not None and when > until:
                        break
                    pop(heap)
                    self.now = when
                    self._origin = event.origin
                    event.fn(*event.args)
                    executed += 1
                    self._events_executed += 1
                    if tick is not None:
                        tick(event.fn)
                    if heartbeat is not None:
                        heartbeat(self.now)
            else:
                pop_due = wheel.pop_due
                while True:
                    if max_events is not None and executed >= max_events:
                        if wheel.head() is not None:
                            self._note_exhausted(max_events, exhaust)
                            return executed
                        break
                    entry = pop_due(until)
                    if entry is None:
                        break
                    self.now = entry[0]
                    event = entry[2]
                    self._origin = event.origin
                    event.fn(*event.args)
                    executed += 1
                    self._events_executed += 1
                    if tick is not None:
                        tick(event.fn)
                    if heartbeat is not None:
                        heartbeat(self.now)
        finally:
            self._origin = None
        return executed

    # -- observation -----------------------------------------------------------

    def attach_observe(self, observe: Any) -> None:
        """Attach a :class:`repro.observe.Observe` bundle to the drain loop.

        ``observe`` must expose ``profiler`` (``None`` or an object with
        ``start()``/``tick(fn)``) and ``heartbeat_tick`` (``None`` or a
        callable taking the current simulated time). Pass-through
        replaces any previous bundle.
        """
        self._observe = observe

    def detach_observe(self) -> None:
        """Return the drain loop to the unobserved fast path."""
        self._observe = None

    @property
    def observe(self) -> Any:
        """The attached observe bundle, or ``None``."""
        return self._observe

    def step(self) -> bool:
        """Execute the next pending event. Returns False if none remain."""
        return self._drain(max_events=1, exhaust=None) == 1

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, so that measurements taken
        "at the end of the run" line up across runs. Exhausting
        ``max_events`` with work still pending is telemetry-visible: the
        ``sim.max_events_exhausted`` counter increments and a
        ``RuntimeWarning`` is issued (it used to return silently).
        """
        self._drain(until=until, max_events=max_events, exhaust="warn")
        if until is not None and self.now < until:
            self.now = until

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain; guard against runaway event storms."""
        self._drain(max_events=max_events, exhaust="raise")

    # -- bookkeeping ----------------------------------------------------------

    def count(self, key: str, amount: float = 1.0) -> None:
        """Increment a named experiment counter (registry-backed)."""
        self.metrics.counter(key).inc(amount)

    def new_uid(self) -> int:
        """Allocate the next packet-span correlation id (monotonic, >= 1)."""
        uid = next(self._uid_seq)
        if self.shard_ctx is not None:
            self.shard_ctx.note_uid(uid)
        return uid

    def tag_packet(self, pkt: Any) -> int:
        """Ensure ``pkt.meta['uid']`` is set; returns the packet's uid.

        The uid identifies one physical copy of a packet across its whole
        lifetime; derived copies (duplicates, retransmissions, replies,
        released piggybacks) get fresh uids with ``meta['parent_uid']``
        pointing at the packet that caused them.
        """
        uid = pkt.meta.get("uid")
        if uid is None:
            uid = pkt.meta["uid"] = self.new_uid()
        return uid

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled tombstones)."""
        if self._wheel is None:
            return len(self._heap)
        return len(self._wheel)

    @property
    def events_executed(self) -> int:
        return self._events_executed

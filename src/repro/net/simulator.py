"""A microsecond-resolution discrete-event simulator.

The simulator is a classic event-heap design: callbacks are scheduled at
absolute simulated times and executed in order. Ties are broken by insertion
order so that runs are fully deterministic for a given seed.

Every component in the reproduction (links, switch ASICs, state-store
servers, TCP endpoints, the RedPlane protocol engine) is driven by this
loop. Nothing uses wall-clock time.

The simulator also roots the telemetry spine: it owns the run's
:class:`~repro.telemetry.metrics.MetricRegistry` (:attr:`Simulator.metrics`)
and :class:`~repro.telemetry.trace.Tracer` (:attr:`Simulator.tracer`),
which every component publishes through. The historical free-form
``Simulator.counters`` dict survives as a read view over the registry;
direct writes to it are deprecated.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.telemetry import MetricRegistry, Tracer
from repro.telemetry.compat import LegacyCounters


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` which makes the heap deterministic:
    two events at the same instant fire in the order they were scheduled.
    """

    time: float
    seq: int
    fn: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the event from firing; cancelled events are skipped."""
        self.cancelled = True


class Simulator:
    """Deterministic discrete-event simulator with a single time line.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned :class:`random.Random`. All stochastic
        behaviour (link loss, reordering, workload generation) must draw
        from :attr:`rng` so that a run is reproducible from its seed.
    """

    def __init__(self, seed: int = 0, trace_ring: int = 65536) -> None:
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._events_executed = 0
        # Correlation ids for packet-lifecycle spans: allocation order is
        # event-execution order, so ids are deterministic per seed and
        # never touch the RNG or the event heap.
        self._uid_seq = itertools.count(1)
        #: The run's metric registry: every component publishes through it.
        self.metrics = MetricRegistry()
        #: The run's trace ring; timestamps are this clock's simulated time.
        self.tracer = Tracer(clock=lambda: self.now, maxlen=trace_ring)
        #: Legacy per-run counters, now a live view over :attr:`metrics`.
        #: Reads work as before; direct writes raise ``DeprecationWarning``.
        self.counters = LegacyCounters(self.metrics)

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, when: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated time ``when``."""
        if when < self.now:
            raise ValueError(
                f"cannot schedule at t={when} before current time t={self.now}"
            )
        event = Event(when, next(self._seq), fn, args)
        heapq.heappush(self._heap, event)
        return event

    # -- execution ------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event. Returns False if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.fn(*event.args)
            self._events_executed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the heap drains, ``until`` is reached, or ``max_events``.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, so that measurements taken
        "at the end of the run" line up across runs.
        """
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                return
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.time > until:
                break
            if not self.step():
                break
            executed += 1
        if until is not None and self.now < until:
            self.now = until

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain; guard against runaway event storms."""
        executed = 0
        while self.step():
            executed += 1
            if executed > max_events:
                raise RuntimeError(
                    f"simulation did not quiesce within {max_events} events"
                )

    # -- bookkeeping ----------------------------------------------------------

    def count(self, key: str, amount: float = 1.0) -> None:
        """Increment a named experiment counter (registry-backed)."""
        self.metrics.counter(key).inc(amount)

    def new_uid(self) -> int:
        """Allocate the next packet-span correlation id (monotonic, >= 1)."""
        return next(self._uid_seq)

    def tag_packet(self, pkt: Any) -> int:
        """Ensure ``pkt.meta['uid']`` is set; returns the packet's uid.

        The uid identifies one physical copy of a packet across its whole
        lifetime; derived copies (duplicates, retransmissions, replies,
        released piggybacks) get fresh uids with ``meta['parent_uid']``
        pointing at the packet that caused them.
        """
        uid = pkt.meta.get("uid")
        if uid is None:
            uid = pkt.meta["uid"] = self.new_uid()
        return uid

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled tombstones)."""
        return len(self._heap)

    @property
    def events_executed(self) -> int:
        return self._events_executed

"""Topology construction and failure injection.

:func:`build_testbed` reproduces the paper's Appendix-D testbed: two core
switches, two programmable aggregation switches (where the in-switch
applications run), two top-of-rack switches, two servers per rack, four
servers behind the core layer emulating hosts outside the datacenter, and
one state-store server per rack plus a third in the "external" rack so a
chain-replication group of three spans different racks.

The aggregation layer is built through a factory so experiments can drop in
either plain :class:`~repro.net.routing.L3Switch` instances or the
programmable :class:`~repro.switch.asic.SwitchASIC` model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.net import constants
from repro.net.hosts import Host
from repro.net.links import Link, Node, Port
from repro.net.packet import ip_aton
from repro.net.routing import L3Switch
from repro.net.simulator import Simulator


class Topology:
    """A collection of nodes and links with failure-injection helpers."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.nodes: Dict[str, Node] = {}
        self.links: List[Link] = []

    def add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name: {node.name}")
        self.nodes[node.name] = node
        return node

    def connect(self, a: Node, b: Node, **link_kwargs) -> Link:
        """Create a new link between ``a`` and ``b``.

        Hosts are single-homed: their pre-created ``nic`` port is used
        (and must still be free); switches get a fresh port per link.
        """
        link = Link(self.sim, self._port_for(a), self._port_for(b), **link_kwargs)
        self.links.append(link)
        return link

    @staticmethod
    def _port_for(node: Node) -> Port:
        nic = getattr(node, "nic", None)
        if nic is not None:
            if nic.link is not None:
                raise RuntimeError(f"host {node.name} is already connected")
            return nic
        return node.new_port()

    # -- failure injection ------------------------------------------------------

    def fail_node(self, node: Node, detect_delay_us: Optional[float] = None) -> None:
        """Fail-stop a node; neighbours learn after a detection delay."""
        delay = constants.FAILURE_DETECT_US if detect_delay_us is None else detect_delay_us
        node.fail()
        for port in node.ports:
            if port.link is None:
                continue
            self._notify_belief(port.link.other_end(port), up=False, delay=delay)

    def recover_node(self, node: Node, detect_delay_us: Optional[float] = None) -> None:
        delay = constants.RECOVERY_DETECT_US if detect_delay_us is None else detect_delay_us
        node.recover()
        for port in node.ports:
            if port.link is None:
                continue
            self._notify_belief(port.link.other_end(port), up=True, delay=delay)

    def fail_link(self, link: Link, detect_delay_us: Optional[float] = None) -> None:
        """Cut a link; both attached switches learn after a detection delay."""
        delay = constants.FAILURE_DETECT_US if detect_delay_us is None else detect_delay_us
        link.fail()
        self._notify_belief(link.a, up=False, delay=delay)
        self._notify_belief(link.b, up=False, delay=delay)

    def recover_link(self, link: Link, detect_delay_us: Optional[float] = None) -> None:
        delay = constants.RECOVERY_DETECT_US if detect_delay_us is None else detect_delay_us
        link.recover()
        self._notify_belief(link.a, up=True, delay=delay)
        self._notify_belief(link.b, up=True, delay=delay)

    def _notify_belief(self, port: Port, up: bool, delay: float) -> None:
        node = port.node
        if isinstance(node, L3Switch):
            self.sim.schedule(delay, node.set_port_belief, port, up)


# -- the Appendix-D testbed -----------------------------------------------------

#: Addresses used throughout the reproduction. Internal racks live under
#: 10.0.<rack>.0/24, external hosts under 172.16.0.0/16, and each RedPlane
#: switch is addressable at a loopback under 10.254.0.0/24 (§5.1.2 assigns
#: an IP address to each RedPlane switch for protocol traffic).
INTERNAL_PREFIX = ip_aton("10.0.0.0")
EXTERNAL_PREFIX = ip_aton("172.16.0.0")
SWITCH_LOOPBACK_PREFIX = ip_aton("10.254.0.0")


@dataclass
class Testbed:
    """Handles to every element of the constructed testbed."""

    sim: Simulator
    topology: Topology
    cores: List[L3Switch] = field(default_factory=list)
    aggs: List[L3Switch] = field(default_factory=list)
    tors: List[L3Switch] = field(default_factory=list)
    servers: List[Host] = field(default_factory=list)      # internal, 2 per rack
    externals: List[Host] = field(default_factory=list)    # behind the core layer
    store_servers: List[Host] = field(default_factory=list)

    def node(self, name: str) -> Node:
        return self.topology.nodes[name]

    def host_by_ip(self, ip: int) -> Host:
        for host in self.servers + self.externals + self.store_servers:
            if host.ip == ip:
                return host
        raise KeyError(f"no host with ip {ip}")


AggFactory = Callable[[Simulator, str, int], L3Switch]
TorFactory = Callable[[Simulator, str, int], L3Switch]
HostFactory = Callable[[Simulator, str, int], Host]


def _default_agg_factory(sim: Simulator, name: str, loopback_ip: int) -> L3Switch:
    return L3Switch(sim, name)


def _default_tor_factory(sim: Simulator, name: str, ip: int) -> L3Switch:
    return L3Switch(sim, name)


def _default_host_factory(sim: Simulator, name: str, ip: int) -> Host:
    return Host(sim, name, ip)


def build_testbed(
    sim: Simulator,
    agg_factory: AggFactory = _default_agg_factory,
    tor_factory: TorFactory = _default_tor_factory,
    store_factory: HostFactory = _default_host_factory,
    link_loss: float = 0.0,
    link_reorder: float = 0.0,
) -> Testbed:
    """Construct the three-layer testbed of Appendix D.

    ``agg_factory(sim, name, loopback_ip)`` builds the two aggregation-layer
    switches; pass a factory producing programmable
    :class:`~repro.switch.asic.SwitchASIC` nodes to run in-switch apps.
    ``tor_factory(sim, name, ip)`` builds the two top-of-rack switches —
    the hook NetChain-style deployments use to make ``tor1`` programmable;
    the address handed to the factory is an otherwise-unused in-rack IP
    (``10.0.<rack>.250``) so a protocol-speaking ToR needs no extra
    routes: aggregation switches already send the rack prefix down to it.
    ``link_loss`` / ``link_reorder`` apply to the switch-to-switch fabric
    links only (host links stay clean), which is where replication traffic
    can be lost or reordered.
    """
    topo = Topology(sim)
    bed = Testbed(sim=sim, topology=topo)
    fabric_kwargs = {"loss_rate": link_loss, "reorder_rate": link_reorder}

    cores = [L3Switch(sim, f"core{i + 1}") for i in range(2)]
    aggs = [
        agg_factory(sim, f"agg{i + 1}", SWITCH_LOOPBACK_PREFIX + i + 1)
        for i in range(2)
    ]
    tors = [
        tor_factory(sim, f"tor{i + 1}", ip_aton(f"10.0.{i + 1}.250"))
        for i in range(2)
    ]
    for node in cores + aggs + tors:
        topo.add_node(node)
    bed.cores, bed.aggs, bed.tors = cores, aggs, tors

    # Fabric: full bipartite core<->agg and agg<->tor, plus a core peer link
    # so hosts attached to different core switches can reach each other.
    core_agg = {}
    for core in cores:
        for agg in aggs:
            core_agg[(core.name, agg.name)] = topo.connect(core, agg, **fabric_kwargs)
    agg_tor = {}
    for agg in aggs:
        for tor in tors:
            agg_tor[(agg.name, tor.name)] = topo.connect(agg, tor, **fabric_kwargs)
    core_peer = topo.connect(cores[0], cores[1], **fabric_kwargs)

    # Hosts: two workload servers and one state-store server per rack.
    for rack, tor in enumerate(tors, start=1):
        for h in (1, 2):
            host = Host(sim, f"s{rack}{h}", ip_aton(f"10.0.{rack}.{10 + h}"))
            topo.add_node(host)
            topo.connect(tor, host)
            bed.servers.append(host)
        store = store_factory(sim, f"st{rack}", ip_aton(f"10.0.{rack}.200"))
        topo.add_node(store)
        topo.connect(tor, store)
        bed.store_servers.append(store)

    # External hosts and the third store server hang off the core layer.
    for i in range(4):
        core = cores[i % 2]
        ext = Host(sim, f"e{i + 1}", ip_aton(f"172.16.0.{11 + i}"))
        topo.add_node(ext)
        topo.connect(core, ext)
        bed.externals.append(ext)
    store3 = store_factory(sim, "st3", ip_aton("172.16.0.200"))
    topo.add_node(store3)
    topo.connect(cores[0], store3)
    bed.store_servers.append(store3)

    _install_routes(bed, core_agg, agg_tor, core_peer)
    return bed


def _host_port(host: Host) -> Port:
    """The switch-side port of the link attaching ``host``."""
    link = host.nic.link
    assert link is not None
    return link.other_end(host.nic)


def _install_routes(bed: Testbed, core_agg, agg_tor, core_peer) -> None:
    cores, aggs, tors = bed.cores, bed.aggs, bed.tors

    def switch_end(link: Link, switch: L3Switch) -> Port:
        return link.a if link.a.node is switch else link.b

    # --- ToR switches: /32 to local hosts, everything else up both aggs.
    for tor in tors:
        uplinks = [switch_end(agg_tor[(agg.name, tor.name)], tor) for agg in aggs]
        tor.table.add(0, 0, uplinks)
        for host in bed.servers + bed.store_servers:
            if host.nic.link and _host_port(host).node is tor:
                tor.table.add(host.ip, 32, [_host_port(host)])

    # --- Aggregation switches: racks down, everything else up both cores.
    for agg in aggs:
        downlinks = {
            tor.name: switch_end(agg_tor[(agg.name, tor.name)], agg) for tor in tors
        }
        for rack, tor in enumerate(tors, start=1):
            agg.table.add(ip_aton(f"10.0.{rack}.0"), 24, [downlinks[tor.name]])
        uplinks = [switch_end(core_agg[(core.name, agg.name)], agg) for core in cores]
        agg.table.add(0, 0, uplinks)

    # --- Core switches: internal down both aggs, /32 to attached hosts,
    #     peer link for hosts attached to the other core, and /32 routes to
    #     each RedPlane switch loopback via that specific switch only.
    for core in cores:
        agg_ports = [switch_end(core_agg[(core.name, agg.name)], core) for agg in aggs]
        core.table.add(INTERNAL_PREFIX, 16, agg_ports)
        peer_port = switch_end(core_peer, core)
        for host in bed.externals + [bed.store_servers[-1]]:
            port = _host_port(host)
            if port.node is core:
                core.table.add(host.ip, 32, [port])
            else:
                core.table.add(host.ip, 32, [peer_port])
        for i, agg in enumerate(aggs):
            loopback = SWITCH_LOOPBACK_PREFIX + i + 1
            core.table.add(
                loopback, 32, [switch_end(core_agg[(core.name, agg.name)], core)]
            )

    # --- Aggregation loopbacks: ToRs route them up; each agg owns its own.
    for i, agg in enumerate(aggs):
        loopback = SWITCH_LOOPBACK_PREFIX + i + 1
        for tor in tors:
            uplink = switch_end(agg_tor[(agg.name, tor.name)], tor)
            tor.table.add(loopback, 32, [uplink])
        # The peer agg's loopback is reachable through the core layer via
        # the default route already installed.

"""Network substrate: discrete-event simulator, packets, links, topology.

This package models the hardware testbed of the RedPlane paper (Appendix D)
in software: a microsecond-resolution discrete-event simulator, byte-accurate
packet headers, links with latency / bandwidth / loss / reordering, L3
switches with ECMP routing, and failure injection.
"""

from repro.net.simulator import Simulator, Event
from repro.net.packet import (
    EthernetHeader,
    IPv4Header,
    UDPHeader,
    TCPHeader,
    FlowKey,
    Packet,
    ip_aton,
    ip_ntoa,
    PROTO_TCP,
    PROTO_UDP,
)
from repro.net.links import Node, Port, Link
from repro.net.hosts import Host
from repro.net.routing import RoutingTable, L3Switch, ecmp_hash
from repro.net.topology import Topology, build_testbed, Testbed

__all__ = [
    "Simulator",
    "Event",
    "EthernetHeader",
    "IPv4Header",
    "UDPHeader",
    "TCPHeader",
    "FlowKey",
    "Packet",
    "ip_aton",
    "ip_ntoa",
    "PROTO_TCP",
    "PROTO_UDP",
    "Node",
    "Port",
    "Link",
    "Host",
    "RoutingTable",
    "L3Switch",
    "ecmp_hash",
    "Topology",
    "build_testbed",
    "Testbed",
]

"""L3 routing: longest-prefix-match tables with ECMP next-hop selection.

The testbed's fixed-function switches (core and ToR layers) run 5-tuple
ECMP, which is what gives the paper its best-effort flow affinity: packets
of one flow normally hash to the same aggregation switch, and reroute to
the alternative only when a switch or link fails (§2, "Network model").

Failure handling mirrors a BFD + route-withdrawal control plane: a switch
keeps forwarding toward a dead next hop until its *belief* about the port is
updated, which the topology schedules ``FAILURE_DETECT_US`` after the fault.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net import constants
from repro.net.links import Node, Port
from repro.net.packet import FlowKey, Packet
from repro.net.simulator import Simulator


def ecmp_hash(key: FlowKey, seed: int = 0) -> int:
    """Partition-aware ECMP hash for next-hop selection.

    The paper assumes the network is "configured to provide best-effort
    affinity such that packets from the same partition usually arrive at
    the same switch ... when [ECMP is] configured to use the partition key
    as their hash key" (§2). We therefore hash the *direction-stable* part
    of the flow identity — protocol plus the sorted port pair — so both
    directions of a connection (including one side rewritten by a NAT or
    load balancer) pick the same next hop. IP addresses are excluded
    because address-translating apps rewrite them asymmetrically.

    CRC32 mixed with a per-switch seed: different switches still spread
    the same flows differently, like real silicon.
    """
    lo, hi = sorted((key.sport, key.dport))
    material = bytes([key.proto]) + lo.to_bytes(2, "big") + hi.to_bytes(2, "big")
    return zlib.crc32(material + seed.to_bytes(4, "big")) & 0xFFFFFFFF


@dataclass
class Route:
    """One LPM entry: a prefix and its set of equal-cost next-hop ports."""

    prefix: int
    mask_len: int
    ports: List[Port] = field(default_factory=list)

    def matches(self, ip: int) -> bool:
        if self.mask_len == 0:
            return True
        shift = 32 - self.mask_len
        return (ip >> shift) == (self.prefix >> shift)


class RoutingTable:
    """A longest-prefix-match table over :class:`Route` entries."""

    def __init__(self) -> None:
        self._routes: List[Route] = []
        #: Bumped on every mutation; the fast path's per-switch route
        #: caches are valid only while this (and the owning switch's
        #: belief version) is unchanged.
        self.version = 0

    def add(self, prefix: int, mask_len: int, ports: List[Port]) -> Route:
        if not ports:
            raise ValueError("a route needs at least one next-hop port")
        route = Route(prefix, mask_len, list(ports))
        self._routes.append(route)
        self.version += 1
        # Keep sorted longest-prefix-first so lookup is a linear scan.
        self._routes.sort(key=lambda r: -r.mask_len)
        return route

    def lookup(self, dst_ip: int) -> Optional[Route]:
        for route in self._routes:
            if route.matches(dst_ip):
                return route
        return None

    def routes(self) -> List[Route]:
        return list(self._routes)


class L3Switch(Node):
    """A fixed-function L3 switch: LPM + ECMP forwarding, TTL handling.

    ``port_up_belief`` is the switch's current view of each local port;
    the routing layer only spreads flows over believed-up next hops.
    """

    #: Network-wide default ECMP seed. Sharing one seed across switches
    #: (same silicon, same config) is what lets the fabric deliver the
    #: per-partition affinity the paper's deployment relies on; per-switch
    #: seeds can still be set to study affinity loss.
    DEFAULT_ECMP_SEED = 0x5EED

    def __init__(self, sim: Simulator, name: str, ecmp_seed: Optional[int] = None) -> None:
        super().__init__(sim, name)
        self.table = RoutingTable()
        self.ecmp_seed = ecmp_seed if ecmp_seed is not None else self.DEFAULT_ECMP_SEED
        self.port_up_belief: Dict[int, bool] = {}
        #: Bumped on every belief change; see :attr:`RoutingTable.version`.
        self.belief_version = 0
        self.forwarded = 0
        self.dropped_no_route = 0
        self.dropped_ttl = 0
        self.dropped_no_next_hop = 0

    # -- belief management --------------------------------------------------

    def believes_up(self, port: Port) -> bool:
        return self.port_up_belief.get(id(port), True)

    def set_port_belief(self, port: Port, up: bool) -> None:
        self.port_up_belief[id(port)] = up
        self.belief_version += 1

    # -- forwarding -----------------------------------------------------------

    def receive(self, pkt: Packet, port: Port) -> None:
        self.forward(pkt)

    def forward(self, pkt: Packet) -> None:
        """Route a packet: LPM, then ECMP among believed-up next hops."""
        if pkt.ip is None:
            self.sim.count(f"{self.name}.drops.non_ip")
            return
        if pkt.ip.ttl <= 1:
            self.dropped_ttl += 1
            self.sim.count("route.drops.ttl")
            return
        out_port = self.select_port(pkt)
        if out_port is None:
            return
        pkt.ip.ttl -= 1
        self.forwarded += 1
        self.sim.schedule(constants.SWITCH_PIPELINE_US, out_port.send, pkt)

    def select_port(self, pkt: Packet) -> Optional[Port]:
        """Pick the output port for a packet without sending it."""
        fp = self.sim.fastpath
        if fp is not None:
            return fp.select_port(self, pkt)
        return self._select_port_uncached(pkt)

    def _select_port_uncached(self, pkt: Packet) -> Optional[Port]:
        """The reference LPM + ECMP walk (also the cache-fill path)."""
        route = self.table.lookup(pkt.ip.dst)
        if route is None:
            self.dropped_no_route += 1
            self.sim.count("route.drops.no_route")
            return None
        alive = [p for p in route.ports if self.believes_up(p)]
        if not alive:
            self.dropped_no_next_hop += 1
            self.sim.count("route.drops.no_next_hop")
            return None
        index = ecmp_hash(pkt.flow_key(), self.ecmp_seed) % len(alive)
        return alive[index]

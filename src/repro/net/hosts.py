"""End hosts: simple single-homed nodes with a protocol dispatch table.

A :class:`Host` owns one IP address and one port toward its top-of-rack
switch. Incoming packets are dispatched to handlers registered per UDP/TCP
destination port, or to a default handler. State-store servers, traffic
generators, and TCP endpoints are built on top of this class.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.net import constants
from repro.net.links import Node, Port
from repro.net.packet import Packet, TCPHeader, UDPHeader
from repro.net.simulator import Simulator

PacketHandler = Callable[[Packet], None]


class Host(Node):
    """A server or client machine with one NIC."""

    def __init__(self, sim: Simulator, name: str, ip: int) -> None:
        super().__init__(sim, name)
        self.ip = ip
        #: Additional addresses this host answers for (e.g. a software NF
        #: owning a service/public IP).
        self.extra_ips: set = set()
        self.nic = self.new_port()
        self._handlers: Dict[int, PacketHandler] = {}
        self.default_handler: Optional[PacketHandler] = None
        self.received: List[Packet] = []
        self.rx_packets = 0
        self.tx_packets = 0

    def bind(self, port_number: int, handler: PacketHandler) -> None:
        """Register a handler for packets whose L4 dport matches."""
        if port_number in self._handlers:
            raise ValueError(f"port {port_number} already bound on {self.name}")
        self._handlers[port_number] = handler

    def unbind(self, port_number: int) -> None:
        self._handlers.pop(port_number, None)

    def send(self, pkt: Packet, delay: float = 0.0) -> None:
        """Transmit a packet after host-stack processing delay."""
        self.tx_packets += 1
        self.sim.schedule(
            delay + constants.HOST_PROC_US, self.nic.send, pkt
        )

    def receive(self, pkt: Packet, port: Port) -> None:
        if pkt.ip is not None and pkt.ip.dst != self.ip and (
            pkt.ip.dst not in self.extra_ips
        ):
            # Not addressed to us; hosts are not routers.
            self.sim.count(f"{self.name}.drops.wrong_dst")
            return
        self.rx_packets += 1
        handler = None
        if isinstance(pkt.l4, (UDPHeader, TCPHeader)):
            handler = self._handlers.get(pkt.l4.dport)
        if handler is None:
            handler = self.default_handler
        if handler is not None:
            handler(pkt)
        else:
            self.received.append(pkt)

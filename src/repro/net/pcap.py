"""Pcap export: capture simulated traffic for Wireshark-style inspection.

Because packets serialize to real bytes (:mod:`repro.net.packet`), a link
tap can dump them into a standard libpcap file and any off-the-shelf tool
can decode the IP/UDP/TCP layers (the RedPlane header appears as UDP
payload on ports 4800/4801). Useful when debugging protocol interactions.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Optional

from repro.net.links import Link, Port
from repro.net.packet import Packet

#: Classic libpcap global header constants.
PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)
LINKTYPE_ETHERNET = 1


class PcapWriter:
    """Writes packets to a libpcap (``.pcap``) file."""

    def __init__(self, stream: BinaryIO, snaplen: int = 65535) -> None:
        self.stream = stream
        self.snaplen = snaplen
        self.packets_written = 0
        self._write_global_header()

    def _write_global_header(self) -> None:
        self.stream.write(struct.pack(
            "<IHHiIII",
            PCAP_MAGIC,
            PCAP_VERSION[0],
            PCAP_VERSION[1],
            0,               # thiszone
            0,               # sigfigs
            self.snaplen,
            LINKTYPE_ETHERNET,
        ))

    def write(self, pkt: Packet, time_us: float) -> None:
        data = pkt.to_bytes()[: self.snaplen]
        seconds = int(time_us // 1_000_000)
        micros = int(time_us % 1_000_000)
        self.stream.write(struct.pack(
            "<IIII", seconds, micros, len(data), len(data)
        ))
        self.stream.write(data)
        self.packets_written += 1

    def close(self) -> None:
        self.stream.flush()


class LinkCapture:
    """Taps a link and streams everything it carries into a pcap file."""

    def __init__(self, link: Link, stream: BinaryIO,
                 direction: Optional[Port] = None) -> None:
        self.link = link
        self.writer = PcapWriter(stream)
        self.direction = direction
        link.taps.append(self._tap)

    def _tap(self, pkt: Packet, src_port: Port) -> None:
        if self.direction is not None and src_port is not self.direction:
            return
        self.writer.write(pkt, self.link.sim.now)

    def detach(self) -> None:
        if self._tap in self.link.taps:
            self.link.taps.remove(self._tap)
        self.writer.close()


def read_pcap(stream: BinaryIO):
    """Parse a pcap file back into (time_us, Packet) pairs (for tests)."""
    header = stream.read(24)
    magic, = struct.unpack_from("<I", header, 0)
    if magic != PCAP_MAGIC:
        raise ValueError("not a (little-endian, classic) pcap file")
    out = []
    while True:
        record = stream.read(16)
        if len(record) < 16:
            break
        seconds, micros, incl_len, _orig_len = struct.unpack("<IIII", record)
        data = stream.read(incl_len)
        out.append((seconds * 1_000_000 + micros, Packet.from_bytes(data)))
    return out

"""Nodes, ports, and point-to-point links.

A :class:`Link` connects two :class:`Port` objects and models one-way
propagation latency, store-and-forward serialization delay, random loss,
and reordering. Links can be administratively or fault-injected down; a
packet entering a down link is silently dropped, exactly like a cut fiber.

Beyond clean fail-stop, a link direction can carry a
:class:`LinkImpairment` — the *gray failure* modes that production link
studies (LinkGuardian) show are the hard case precisely because routing
does not react to them: extra random loss, FCS corruption (the frame
crosses the wire, burns bandwidth, and is discarded by the receiving
MAC), duplication, delay jitter, degraded line rate, and one-way
blackholing (asymmetric partition). Impairments are per *direction* (keyed
by the sending port), drawn from the simulator's seeded RNG, and leave
routing beliefs untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.net import constants
from repro.net.packet import Packet
from repro.net.simulator import Simulator
from repro.telemetry import trace as tt


@dataclass
class LinkImpairment:
    """Gray-failure parameters for one direction of a link.

    All probabilities are per transmitted packet; a zeroed impairment is
    indistinguishable from a healthy direction.
    """

    #: Additional random loss on top of the link's base ``loss_rate``.
    drop_rate: float = 0.0
    #: FCS corruption: the frame is serialized and delivered, then dropped
    #: by the receiving MAC — bandwidth is spent, the packet is not.
    corrupt_rate: float = 0.0
    #: The frame is duplicated on the wire (both copies delivered).
    duplicate_rate: float = 0.0
    #: Uniform extra propagation delay in ``[0, jitter_us]`` per packet.
    jitter_us: float = 0.0
    #: Line-rate multiplier in ``(0, 1]``; e.g. 0.1 = link degraded to 10%.
    bandwidth_scale: float = 1.0
    #: One-way blackhole: every packet in this direction dies silently
    #: (asymmetric partition — the reverse direction still works).
    blocked: bool = False

    def __post_init__(self) -> None:
        for rate_name in ("drop_rate", "corrupt_rate", "duplicate_rate"):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{rate_name} must be in [0, 1], got {rate}")
        if self.jitter_us < 0.0:
            raise ValueError("jitter_us must be non-negative")
        if not 0.0 < self.bandwidth_scale <= 1.0:
            raise ValueError("bandwidth_scale must be in (0, 1]")

    def describe(self) -> str:
        """Compact ``key=value`` summary of the non-default fields."""
        parts = []
        if self.blocked:
            parts.append("blocked")
        for attr, default in (("drop_rate", 0.0), ("corrupt_rate", 0.0),
                              ("duplicate_rate", 0.0), ("jitter_us", 0.0),
                              ("bandwidth_scale", 1.0)):
            value = getattr(self, attr)
            if value != default:
                parts.append(f"{attr}={value:g}")
        return ",".join(parts) or "healthy"


class Node:
    """Base class for anything with ports: hosts, switches, servers."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.ports: List[Port] = []
        self.failed = False

    def new_port(self) -> "Port":
        port = Port(self, len(self.ports))
        self.ports.append(port)
        return port

    def receive(self, pkt: Packet, port: "Port") -> None:
        """Handle a packet arriving on ``port``. Subclasses override."""
        raise NotImplementedError

    def fail(self) -> None:
        """Fail-stop the node: drop all future traffic addressed to it."""
        self.failed = True

    def recover(self) -> None:
        self.failed = False

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class Port:
    """One attachment point of a node; at most one link per port."""

    def __init__(self, node: Node, index: int) -> None:
        self.node = node
        self.index = index
        self.link: Optional[Link] = None

    def send(self, pkt: Packet) -> None:
        """Transmit a packet out of this port onto the attached link."""
        if self.link is None:
            raise RuntimeError(f"{self} has no link attached")
        self.link.transmit(pkt, self)

    @property
    def peer(self) -> Optional["Port"]:
        """The port at the far end of the attached link, if any."""
        if self.link is None:
            return None
        return self.link.other_end(self)

    def __repr__(self) -> str:
        return f"<Port {self.node.name}[{self.index}]>"


class Link:
    """A full-duplex point-to-point link between two ports."""

    def __init__(
        self,
        sim: Simulator,
        a: Port,
        b: Port,
        latency_us: float = constants.LINK_LATENCY_US,
        bandwidth_gbps: float = constants.LINK_BANDWIDTH_GBPS,
        loss_rate: float = 0.0,
        reorder_rate: float = 0.0,
        queue_limit_bytes: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        if a.link is not None or b.link is not None:
            raise RuntimeError("port already has a link attached")
        self.sim = sim
        self.a = a
        self.b = b
        a.link = self
        b.link = self
        self.latency_us = latency_us
        self.bandwidth_gbps = bandwidth_gbps
        self.loss_rate = loss_rate
        self.reorder_rate = reorder_rate
        #: Finite transmit queue (tail drop) per direction; None = infinite.
        self.queue_limit_bytes = queue_limit_bytes
        self.up = True
        self.name = name or f"{a.node.name}<->{b.node.name}"
        # Per-direction byte/packet accounting, published through the run's
        # metric registry; handles are cached here so the transmit hot path
        # pays one dict lookup + one float add. (Parallel links with an
        # identical default name share instruments; name them explicitly if
        # per-link numbers matter.)
        m = sim.metrics
        self._dir_names: Dict[int, str] = {
            id(a): f"{a.node.name}->{b.node.name}",
            id(b): f"{b.node.name}->{a.node.name}",
        }
        self._ctr_tx_bytes = {
            pid: m.counter("link.tx_bytes", link=self.name, dir=d)
            for pid, d in self._dir_names.items()
        }
        self._ctr_tx_packets = {
            pid: m.counter("link.tx_packets", link=self.name, dir=d)
            for pid, d in self._dir_names.items()
        }
        self._ctr_queue_drops = m.counter("link.queue_drops", link=self.name)
        self._ctr_duplicated = m.counter("link.duplicated", link=self.name)
        #: ``link.drops{link,reason}`` handles, created lazily per reason
        #: (the legacy flat ``link.drops.<reason>`` names remain readable
        #: through ``Simulator.counters`` as compat views).
        self._ctr_drops: Dict[str, object] = {}
        #: Per-direction transmit-queue drain time: packets serialize one
        #: after another, so a burst queues (and TCP sees real bandwidth).
        self._busy_until: Dict[int, float] = {id(a): 0.0, id(b): 0.0}
        #: Per-direction gray-failure impairments, keyed by sending-port id.
        self._impairments: Dict[int, LinkImpairment] = {}
        #: Optional taps invoked for every transmitted packet: fn(pkt, src_port).
        self.taps: List[Callable[[Packet, Port], None]] = []

    def other_end(self, port: Port) -> Port:
        if port is self.a:
            return self.b
        if port is self.b:
            return self.a
        raise ValueError("port is not an end of this link")

    def serialization_delay_us(self, pkt: Packet) -> float:
        """Store-and-forward delay: bits / line rate."""
        bits = pkt.byte_size() * 8
        return bits / (self.bandwidth_gbps * 1000.0)

    def _drop(self, pkt: Packet, src_port: Port, reason: str) -> None:
        ctr = self._ctr_drops.get(reason)
        if ctr is None:
            ctr = self._ctr_drops[reason] = self.sim.metrics.counter(
                "link.drops", link=self.name, reason=reason
            )
        ctr.inc()
        self.sim.tracer.emit(
            tt.PACKET_DROP,
            link=self.name,
            dir=self._dir_names[id(src_port)],
            reason=reason,
            bytes=pkt.byte_size(),
            uid=pkt.meta.get("uid", 0),
        )

    def transmit(self, pkt: Packet, src_port: Port) -> None:
        """Send a packet from ``src_port`` toward the other end."""
        fp = self.sim.fastpath
        if fp is not None:
            # Inlined lane lookup (one dict probe on the hot path); a
            # compiled lane accepting the packet is bit-identical to the
            # reference path below.
            lane = fp._lanes.get(id(src_port))
            if lane is None:
                lane = fp.make_lane(self, src_port)
            if lane.transmit(pkt):
                return
        # Span correlation: a packet gets its uid on first wire contact and
        # keeps it hop to hop (meta travels with the object, not the wire).
        meta = pkt.meta
        uid = meta.get("uid")
        if uid is None:
            uid = meta["uid"] = self.sim.new_uid()
        key = id(src_port)
        # Flow tag computed once per packet lifetime and cached in meta so
        # per-flow timelines can filter sends without joining other records.
        flow = meta.get("flow_s")
        if flow is None and pkt.ip is not None:
            flow = meta["flow_s"] = str(pkt.flow_key())
        # The send record marks the packet *entering* the link direction —
        # emitted before the down/partition/loss/queue verdicts so every
        # wire-level drop pairs with an origin (span completeness).
        send_fields: Dict[str, object] = {
            "link": self.name,
            "dir": self._dir_names[key],
            "bytes": pkt.byte_size(),
            "uid": uid,
            "kind": meta.get("rp_kind", "app"),
        }
        if flow is not None:
            send_fields["flow"] = flow
        parent = meta.get("parent_uid")
        if parent is not None:
            send_fields["parent"] = parent
        self.sim.tracer.emit(tt.PACKET_SEND, **send_fields)
        if not self.up:
            self._drop(pkt, src_port, "down")
            return
        dst_port = self.other_end(src_port)
        impairment = self._impairments.get(key)
        if impairment is not None and impairment.blocked:
            # Asymmetric partition: this direction is a silent blackhole.
            self._drop(pkt, src_port, "partition")
            return
        self._ctr_tx_bytes[key].inc(pkt.byte_size())
        self._ctr_tx_packets[key].inc()
        for tap in self.taps:
            tap(pkt, src_port)
        if self.loss_rate > 0.0 and self.sim.rng.random() < self.loss_rate:
            self._drop(pkt, src_port, "loss")
            return
        rate_gbps = self.bandwidth_gbps
        corrupted = False
        duplicated = False
        jitter_us = 0.0
        if impairment is not None:
            if (impairment.drop_rate > 0.0
                    and self.sim.rng.random() < impairment.drop_rate):
                self._drop(pkt, src_port, "gray_loss")
                return
            rate_gbps *= impairment.bandwidth_scale
            if impairment.corrupt_rate > 0.0:
                corrupted = self.sim.rng.random() < impairment.corrupt_rate
            if impairment.duplicate_rate > 0.0:
                duplicated = self.sim.rng.random() < impairment.duplicate_rate
            if impairment.jitter_us > 0.0:
                jitter_us = self.sim.rng.random() * impairment.jitter_us
        # Store-and-forward with per-direction serialization queueing.
        backlog_us = max(0.0, self._busy_until[key] - self.sim.now)
        if self.queue_limit_bytes is not None:
            backlog_bytes = backlog_us * rate_gbps * 1000.0 / 8.0
            if backlog_bytes + pkt.byte_size() > self.queue_limit_bytes:
                # Tail drop: the transmit queue is full.
                self._ctr_queue_drops.inc()
                self._drop(pkt, src_port, "queue")
                return
        copies = 2 if duplicated else 1
        ser_us = (pkt.byte_size() * 8) / (rate_gbps * 1000.0)
        start = max(self.sim.now, self._busy_until[key])
        finish = start + ser_us * copies
        self._busy_until[key] = finish
        delay = (start + ser_us - self.sim.now) + self.latency_us + jitter_us
        if self.reorder_rate > 0.0 and self.sim.rng.random() < self.reorder_rate:
            delay += constants.REORDER_EXTRA_US * self.sim.rng.random()
            self.sim.count("link.reordered")
            self.sim.tracer.emit(
                tt.PACKET_REORDER,
                link=self.name,
                dir=self._dir_names[key],
                delay_us=delay,
                uid=uid,
            )
        self.sim.schedule(delay, self._deliver, pkt, dst_port, corrupted)
        if duplicated:
            # The duplicate serializes right behind the original and is a
            # distinct object downstream (each copy is processed once); it
            # gets its own span uid with the original as parent.
            self._ctr_duplicated.inc()
            dup_pkt = pkt.copy()
            dup_uid = dup_pkt.meta["uid"] = self.sim.new_uid()
            dup_pkt.meta["parent_uid"] = uid
            self.sim.tracer.emit(
                tt.PACKET_DUP,
                link=self.name,
                dir=self._dir_names[key],
                bytes=pkt.byte_size(),
                uid=dup_uid,
                parent=uid,
            )
            self.sim.schedule(
                delay + ser_us, self._deliver, dup_pkt, dst_port, corrupted
            )

    def _deliver(self, pkt: Packet, dst_port: Port,
                 corrupted: bool = False) -> None:
        src_port = self.other_end(dst_port)
        if not self.up:
            self._drop(pkt, src_port, "down")
            return
        if corrupted:
            # The receiving MAC discards the frame on FCS mismatch; the
            # bandwidth was spent, the packet never reaches the node.
            self._drop(pkt, src_port, "corrupt")
            return
        node = dst_port.node
        if node.failed:
            self._drop(pkt, src_port, "node_failed")
            return
        self.sim.tracer.emit(
            tt.PACKET_DELIVER,
            link=self.name,
            dir=self._dir_names[id(src_port)],
            node=node.name,
            uid=pkt.meta.get("uid", 0),
        )
        node.receive(pkt, dst_port)

    # -- failure injection ------------------------------------------------------

    def fail(self) -> None:
        """Cut the link; in-flight packets are also lost."""
        self.up = False

    def recover(self) -> None:
        self.up = True

    def impair(self, impairment: LinkImpairment,
               direction: Optional[Port] = None) -> None:
        """Install a gray-failure impairment on one or both directions.

        ``direction`` is the *sending* port of the affected direction;
        ``None`` impairs both directions with the same parameters.
        """
        if direction is None:
            keys = [id(self.a), id(self.b)]
        else:
            self.other_end(direction)  # validates membership
            keys = [id(direction)]
        for key in keys:
            self._impairments[key] = impairment

    def clear_impairments(self, direction: Optional[Port] = None) -> None:
        """Lift impairments from one direction (or, with ``None``, all)."""
        if direction is None:
            self._impairments.clear()
        else:
            self.other_end(direction)
            self._impairments.pop(id(direction), None)

    def impairment_of(self, direction: Port) -> Optional[LinkImpairment]:
        """The impairment active on the direction sent from ``direction``."""
        return self._impairments.get(id(direction))

    @property
    def impaired(self) -> bool:
        return bool(self._impairments)

    def backlog_us(self) -> float:
        """Summed transmit-queue drain time across both directions, in
        simulated microseconds from *now* — the queue-depth number the
        observability heartbeat reports. 0.0 when both directions are
        idle. Pure read of serialization state; no side effects."""
        now = self.sim.now
        return sum(max(0.0, busy - now)
                   for busy in self._busy_until.values())

    # -- registry-backed accounting views ---------------------------------------

    @property
    def queue_drops(self) -> int:
        return int(self._ctr_queue_drops.value)

    @property
    def tx_bytes(self) -> Dict[int, int]:
        """Per-direction bytes, keyed by ``id(sending port)`` (legacy shape)."""
        return {pid: int(c.value) for pid, c in self._ctr_tx_bytes.items()}

    @property
    def tx_packets(self) -> Dict[int, int]:
        return {pid: int(c.value) for pid, c in self._ctr_tx_packets.items()}

    def total_tx_bytes(self) -> int:
        return sum(int(c.value) for c in self._ctr_tx_bytes.values())

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return f"<Link {self.name} {state}>"


class SinkNode(Node):
    """A node that records every packet it receives; useful in tests."""

    def __init__(self, sim: Simulator, name: str = "sink") -> None:
        super().__init__(sim, name)
        self.received: List[Packet] = []
        self.receive_times: List[float] = []
        self.on_receive: Optional[Callable[[Packet, Port], None]] = None

    def receive(self, pkt: Packet, port: Port) -> None:
        self.received.append(pkt)
        self.receive_times.append(self.sim.now)
        if self.on_receive is not None:
            self.on_receive(pkt, port)

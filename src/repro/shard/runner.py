"""Drive sharded runs: reference, inline shards, worker processes, merge.

Three drive modes share one scenario definition
(:mod:`repro.shard.scenarios`):

* **reference** — the plain single-process run, the bit-identity truth;
* **inline** — every shard (plus the ghost) runs sequentially in this
  process. Deterministic, debuggable, and the mode the identity tests
  and the scaling bench use: the plan proves shards causally
  independent, so each shard's isolated wall time is an honest measure
  of what a dedicated core would spend (critical-path throughput);
* **process** — shards run in spawned worker processes synchronized by
  the conservative window protocol over length-prefixed frames
  (:mod:`repro.shard.worker`).

Every sharded entry point gates on the committed shard plan first:
:func:`repro.shard.plan.check_conformance` recomputes the plan from the
live code and refuses to shard on drift (launch-time RS408).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.net.simulator import Simulator
from repro.shard import merge as merge_mod
from repro.shard import plan as plan_mod
from repro.shard.recorder import ShardRecorder
from repro.shard.scenarios import Scenario, get_scenario
from repro.shard.window import (
    DEFAULT_CHUNK_US,
    WindowController,
    WindowSchedule,
)
from repro.telemetry import ScopedTimer


@dataclass
class ShardRunConfig:
    """Everything one sharded run needs, resolved up front."""

    scenario: Scenario
    workers: int
    plan: Dict[str, Any]
    key_fields: List[str]
    pinned: bool
    pin_reason: str
    lookahead_us: float
    schedule: WindowSchedule
    seed: int
    fastpath: bool = False
    capture: bool = True
    heartbeat_dir: Optional[str] = None
    heartbeat_interval_us: float = 1_000.0
    params: Dict[str, Any] = field(default_factory=dict)


def resolve(
    scenario_name: str,
    workers: int,
    seed: Optional[int] = None,
    fastpath: bool = False,
    capture: bool = True,
    chunk_us: Optional[float] = None,
    heartbeat_dir: Optional[str] = None,
    heartbeat_interval_us: float = 1_000.0,
    conformance: bool = True,
    root: Optional[str] = None,
    params: Optional[Dict[str, Any]] = None,
) -> ShardRunConfig:
    """Load scenario + plan, run the launch-time RS408 gate, and build
    the window schedule. Raises before any worker starts on drift or an
    inconsistent plan."""
    scenario = get_scenario(scenario_name)
    if conformance:
        committed = plan_mod.check_conformance(scenario.app, root)
    else:
        committed = plan_mod.load_plan(scenario.app, root)
    lookahead = plan_mod.sync_window_us(committed)
    shardable, reason = plan_mod.shardability(committed)
    # Flow-partitioned plans have an empty boundary set (every structure
    # is flow-local, so no packet of one shard's flows ever needs state
    # on another shard): windows become a pacing quantum. Pinned plans
    # put all flows on shard 0, which empties the boundary set too.
    schedule = WindowSchedule(
        lookahead, chunk_us=chunk_us or DEFAULT_CHUNK_US, boundary_free=True
    )
    return ShardRunConfig(
        scenario=scenario,
        workers=workers,
        plan=committed,
        key_fields=plan_mod.key_fields(committed),
        pinned=not shardable,
        pin_reason="" if shardable else reason,
        lookahead_us=lookahead,
        schedule=schedule,
        seed=scenario.seed if seed is None else seed,
        fastpath=fastpath,
        capture=capture,
        heartbeat_dir=heartbeat_dir,
        heartbeat_interval_us=heartbeat_interval_us,
        params=dict(params or {}),
    )


def _new_sim(config: ShardRunConfig) -> Simulator:
    return Simulator(seed=config.seed)


def _attach_heartbeat(sim: Simulator, config: ShardRunConfig,
                      label: str) -> Optional[Any]:
    if config.heartbeat_dir is None:
        return None
    import os

    from repro.observe import attach

    os.makedirs(config.heartbeat_dir, exist_ok=True)
    path = os.path.join(config.heartbeat_dir, f"heartbeat.{label}.ndjson")
    # Shard campaigns can finish their event activity in a few sim
    # milliseconds (the heartbeat only ticks while events execute), so
    # the default 10ms cadence can yield an empty file; shard runs use a
    # finer default.
    return attach(sim, profile=False, heartbeat_path=path,
                  heartbeat_interval_us=config.heartbeat_interval_us)


def run_reference(config: ShardRunConfig) -> Dict[str, Any]:
    """The plain single-process run of the scenario (no recorder)."""
    sim = _new_sim(config)
    bundle = _attach_heartbeat(sim, config, "reference")

    def pace(until: float) -> None:
        sim.run(until=until)

    with ScopedTimer("shard_reference") as timer:
        extra = config.scenario.fn(
            sim, pace, fastpath=config.fastpath, **config.params
        )
    if bundle is not None:
        bundle.close()
    result = merge_mod.reference_result(sim)
    result["wall_s"] = timer.elapsed_s
    result["extra"] = extra
    result["final_now"] = sim.now
    return result


def run_one_shard(
    config: ShardRunConfig,
    shard_index: int,
    ghost: bool = False,
    pace_hook: Optional[Callable[[Simulator, float], None]] = None,
) -> Dict[str, Any]:
    """Run one shard (or the ghost) to completion in this process.

    ``pace_hook(sim, until)`` overrides the drive loop (the process-mode
    worker passes its window-request loop); the default advances
    directly, optionally chunked by the window schedule so inline runs
    exercise the same windowed clock advancement.
    """
    recorder = ShardRecorder(
        shard_index=0 if ghost else shard_index,
        num_shards=config.workers,
        key_fields=config.key_fields,
        pinned=config.pinned,
        ghost=ghost,
        capture_records=config.capture,
    )
    sim = _new_sim(config)
    recorder.attach(sim, config.seed)
    label = "ghost" if ghost else f"shard{shard_index}"
    bundle = _attach_heartbeat(sim, config, label)

    if pace_hook is not None:
        def pace(until: float) -> None:
            pace_hook(sim, until)
    else:
        def pace(until: float) -> None:
            sim.run(until=until)

    with ScopedTimer("shard_worker") as timer:
        extra = config.scenario.fn(
            sim, pace, fastpath=config.fastpath, **config.params
        )
    if bundle is not None:
        bundle.close()
    result = recorder.result()
    result["wall_s"] = timer.elapsed_s
    result["extra"] = extra
    return result


def _windowed_pace(controller: WindowController, shard: int):
    """Inline windowed drive: same grant/commit discipline the process
    workers follow, against an in-process controller."""

    def hook(sim: Simulator, until: float) -> None:
        while sim.now < until:
            upto = controller.request(shard, sim.now, until)
            sim.run(until=upto)
            controller.done(shard, sim.now)

    return hook


def run_sharded(
    config: ShardRunConfig,
    mode: str = "inline",
    windowed: bool = True,
) -> Dict[str, Any]:
    """Run all shards plus the ghost and merge.

    Returns the merged result (see :func:`repro.shard.merge.merge_results`)
    plus per-shard wall times and scheduling metadata. ``mode`` is
    ``"inline"`` (sequential, this process) or ``"process"`` (spawned
    workers exchanging frames).
    """
    if mode == "process":
        from repro.shard.worker import run_process_shards

        shard_results = run_process_shards(config)
    elif mode == "inline":
        shard_results = []
        if windowed:
            # One controller spanning all shards: inline runs still
            # exercise grant/commit clock discipline, shard by shard
            # (legal: the plan proves the boundary set empty, so a
            # shard never waits on another's events).
            for index in range(config.workers):
                controller = WindowController(config.workers, config.schedule)
                # Peers that have not run yet hold clock 0; lift them to
                # the horizon so a sequential shard is never throttled
                # by a peer that cannot send it anything.
                for other in range(config.workers):
                    if other != index:
                        controller.clocks[other] = float("inf")
                shard_results.append(run_one_shard(
                    config, index,
                    pace_hook=_windowed_pace(controller, index),
                ))
        else:
            for index in range(config.workers):
                shard_results.append(run_one_shard(config, index))
    else:
        raise ValueError(f"unknown shard run mode {mode!r}")

    ghost = run_one_shard(config, 0, ghost=True)
    if config.capture:
        merged = merge_mod.merge_results(shard_results, ghost)
    else:
        merged = merge_mod.summary_results(shard_results, ghost)
    merged["mode"] = mode
    merged["scenario"] = config.scenario.name
    merged["app"] = config.plan.get("app")
    merged["pinned"] = config.pinned
    merged["pin_reason"] = config.pin_reason
    merged["lookahead_us"] = config.lookahead_us
    merged["window_us"] = config.schedule.window_us
    merged["seed"] = config.seed
    merged["wall_s_per_shard"] = [r["wall_s"] for r in shard_results]
    merged["wall_s_ghost"] = ghost["wall_s"]
    merged["wall_s_max_shard"] = max(r["wall_s"] for r in shard_results)
    merged["flows_per_shard"] = [r["flows_injected"] for r in shard_results]
    merged["extra"] = _merge_extra(shard_results, ghost)
    return merged


def _merge_extra(
    shard_results: List[Dict[str, Any]], ghost: Dict[str, Any]
) -> Optional[Dict[str, Any]]:
    """Ghost-subtract the scenario's numeric return values.

    A scenario's extras are either counter-like (each shard contributes
    its owned flows' share, shared work appears on every replica — the
    standard ``sum - (N-1) * ghost`` identity) or lockstep constants
    (identical on every replica, where the identity degenerates to
    ``N*x - (N-1)*x = x``). Either way the subtraction reproduces the
    reference value. Non-numeric extras come from shard 0 verbatim.
    """
    first = shard_results[0].get("extra")
    if not isinstance(first, dict):
        return first
    replicas = len(shard_results)
    ghost_extra = ghost.get("extra") or {}
    out: Dict[str, Any] = {}
    for key, value in first.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            out[key] = value
            continue
        total = sum(
            r.get("extra", {}).get(key, 0) for r in shard_results
        )
        out[key] = total - (replicas - 1) * ghost_extra.get(key, 0)
    return out


def run_identity(
    scenario_name: str,
    workers: int = 2,
    fastpath: bool = False,
    mode: str = "inline",
    conformance: bool = True,
    params: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Reference vs merged N-shard run; returns the axis-by-axis report.

    The identity contract additionally requires zero RNG draws — a
    shard that drew randomness saw a different draw sequence than the
    reference, so agreement would be coincidence, not construction.
    """
    config = resolve(
        scenario_name, workers, conformance=conformance, fastpath=fastpath,
        params=params,
    )
    reference = run_reference(config)
    merged = run_sharded(config, mode=mode)
    report = merge_mod.identity_report(reference, merged)
    report["rng_silent"] = merged["rng_draws"] == 0
    return {
        "scenario": scenario_name,
        "workers": workers,
        "mode": mode,
        "report": report,
        "identical": all(report.values()),
        "reference": reference,
        "merged": merged,
    }

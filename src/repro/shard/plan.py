"""Shard-plan loading, legality, and launch-time conformance (RS408).

The verify pass 5 analyzer commits one machine-checked plan per app in
``shard_plans/<app>.json``. This module is the runtime consumer:

* :func:`load_plan` reads the committed artifact;
* :func:`check_conformance` recomputes the plan from the live code and
  refuses to shard when the committed plan has drifted (the launch-time
  face of verify rule RS408 — the same byte comparison ``verify --all``
  applies offline);
* :func:`sync_window_us` derives the conservative-sync lookahead and
  asserts it equals the minimum cross-shard link latency, the invariant
  that makes the window protocol safe;
* :func:`shardability` decides whether flows may be hash-partitioned or
  must be pinned to one owner shard (global residue, hashed payload
  keys — the Cascone/Muqaddas state-access constraints the analyzer
  already classified).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.shard.assign import extractable


class PlanError(ValueError):
    """A committed shard plan is malformed or internally inconsistent."""


class PlanDriftError(PlanError):
    """The committed plan no longer matches the live code (RS408)."""


def plan_dir(root: Optional[str] = None) -> str:
    if root is not None:
        return os.path.join(root, "shard_plans")
    from repro.verify.cli import shard_plan_dir

    return shard_plan_dir()


def available_plans(root: Optional[str] = None) -> List[str]:
    """App names with a committed plan, sorted."""
    directory = plan_dir(root)
    if not os.path.isdir(directory):
        return []
    return sorted(
        name[:-5] for name in os.listdir(directory) if name.endswith(".json")
    )


def load_plan(app: str, root: Optional[str] = None) -> Dict[str, object]:
    """Read the committed plan for ``app``; PlanError when absent/bad."""
    path = os.path.join(plan_dir(root), f"{app}.json")
    try:
        with open(path, encoding="utf-8") as fh:
            plan = json.load(fh)
    except OSError as exc:
        raise PlanError(
            f"no committed shard plan for app {app!r} "
            f"(expected {path}); run 'verify --all --emit-plans shard_plans'"
        ) from exc
    except json.JSONDecodeError as exc:
        raise PlanError(f"malformed shard plan {path}: {exc}") from exc
    if plan.get("format") != 1:
        raise PlanError(
            f"unsupported shard plan format {plan.get('format')!r} in {path}"
        )
    return plan


def check_conformance(app: str, root: Optional[str] = None) -> Dict[str, object]:
    """Launch-time RS408: recompute the plan and byte-compare.

    Deploys the app exactly as ``verify --all`` does, serializes the
    fresh plan canonically, and compares against the committed bytes.
    Returns the (validated) plan on success; raises
    :class:`PlanDriftError` on any difference — a sharded run against a
    stale plan could partition state the code no longer keys that way.
    """
    from repro.apps import BUILTIN_APPS
    from repro.verify.cli import repo_root
    from repro.verify.partition_pass import plan_json, verify_partition_app

    spec = BUILTIN_APPS.get(app)
    if spec is None:
        raise PlanError(
            f"unknown app {app!r}; builtin apps: "
            f"{', '.join(sorted(BUILTIN_APPS))}"
        )
    committed = load_plan(app, root)
    # Site paths in the fresh plan must relativize against the repo, not
    # the caller's cwd, or conformance fails for runs launched elsewhere.
    _, fresh = verify_partition_app(
        spec["factory"], label=app, structures=spec.get("structures"),
        root=root or repo_root(),
    )
    if plan_json(fresh) != plan_json(committed):
        raise PlanDriftError(
            f"committed shard plan for app {app!r} has drifted from the "
            "live code (RS408); refusing to shard. Regenerate with "
            "'verify --all --emit-plans shard_plans' and review the diff."
        )
    return committed


def sync_window_us(plan: Dict[str, object]) -> float:
    """The conservative-sync lookahead: min cross-shard link latency.

    Validates the plan's own ``sync_lookahead_us`` against the link set
    it was derived from; a mismatch means the artifact is internally
    inconsistent and no window schedule built from it is trustworthy.
    """
    cross = plan.get("cross_shard") or {}
    links = cross.get("links") or []
    declared = cross.get("sync_lookahead_us")
    if not links:
        if declared in (None, 0, 0.0):
            return 0.0
        raise PlanError(
            f"plan for {plan.get('app')!r} declares lookahead {declared} "
            "with no cross-shard links"
        )
    latencies = [float(link["latency_us"]) for link in links]
    derived = min(latencies)
    if derived <= 0.0:
        raise PlanError(
            f"plan for {plan.get('app')!r} has a non-positive cross-shard "
            f"link latency ({derived}); zero-lookahead windows cannot "
            "make progress"
        )
    if declared is None or abs(float(declared) - derived) > 1e-12:
        raise PlanError(
            f"plan for {plan.get('app')!r}: sync_lookahead_us={declared} "
            f"but min cross-shard link latency is {derived}"
        )
    return derived


def shardability(plan: Dict[str, object]) -> Tuple[bool, str]:
    """Whether flows may be hash-partitioned across workers.

    Returns ``(True, key_reason)`` when every structure is flow-local
    under a packet-extractable key and the global residue is empty.
    Otherwise ``(False, reason)``: the run is still legal, but every
    flow is pinned to one owner shard (shard 0) so the global-residue
    structures observe the full population in reference order.
    """
    residue = plan.get("global_residue") or []
    if residue:
        return False, (
            f"{len(residue)} global-residue structure(s) "
            f"(e.g. {residue[0]}) must observe every flow"
        )
    pclass = plan.get("partition_class")
    if pclass not in ("flow_local", "flow_hash"):
        return False, f"partition class {pclass!r} is not flow-partitionable"
    key = plan.get("partition_key") or {}
    fields = key.get("fields") or []
    if not extractable(fields):
        return False, (
            f"partition key fields {fields!r} are not packet-header "
            "extractable (hashed/payload keys pin to one shard)"
        )
    return True, f"flow key [{', '.join(fields)}]"


def key_fields(plan: Dict[str, object]) -> List[str]:
    key = plan.get("partition_key") or {}
    return list(key.get("fields") or [])

"""Sharded parallel simulation driven by machine-checked shard plans.

The horizontal-scaling subsystem: partition a campaign's flow
population across N workers according to the committed per-app shard
plan (``shard_plans/<app>.json``, produced and drift-checked by
``repro.verify`` pass 5), synchronize them with a conservative
time-window protocol bounded by the plan's cross-shard min-latency
lookahead, and deterministically merge the per-shard streams back into
the exact byte stream the single-process reference produces.

Package map:

=================  ==========================================================
module             role
=================  ==========================================================
``plan``           committed-plan loading, legality, launch-time RS408 gate
``assign``         flow -> shard hashing from the plan's partition key
``recorder``       per-shard sidecars: origins, uid births, observations
``window``         conservative window protocol (lookahead law, controller)
``frames``         length-prefixed worker protocol frames
``scenarios``      shard-disciplined campaign drivers
``runner``         reference / inline / process drive modes + identity gate
``worker``         spawned-process worker entry point
``merge``          deterministic stream reassembly + identity report
``bench``          million-flow scaling bench (BENCH_shard.json)
=================  ==========================================================

See docs/SHARDING.md for the end-to-end story.
"""

from repro.shard.merge import MergeError, identity_report, merge_results
from repro.shard.plan import (
    PlanDriftError,
    PlanError,
    check_conformance,
    load_plan,
    shardability,
    sync_window_us,
)
from repro.shard.recorder import ShardRecorder
from repro.shard.runner import (
    ShardRunConfig,
    resolve,
    run_identity,
    run_reference,
    run_sharded,
)
from repro.shard.window import (
    BoundaryBuffer,
    BoundaryViolation,
    WindowController,
    WindowSchedule,
)

__all__ = [
    "BoundaryBuffer",
    "BoundaryViolation",
    "MergeError",
    "PlanDriftError",
    "PlanError",
    "ShardRecorder",
    "ShardRunConfig",
    "WindowController",
    "WindowSchedule",
    "check_conformance",
    "identity_report",
    "load_plan",
    "merge_results",
    "resolve",
    "run_identity",
    "run_reference",
    "run_sharded",
    "shardability",
    "sync_window_us",
]

"""Length-prefixed control frames for the shard worker protocol.

Workers and the controller exchange small typed messages (window
requests and grants, heartbeat deltas, results). Each message is one
self-delimiting frame::

    !I   frame length (type byte + payload, not counting this prefix)
    !B   frame type (one of the ``F_*`` constants)
    ...  payload: compact JSON (UTF-8, key order preserved)

The same codec discipline as :mod:`repro.statestore.codec`: module-level
:class:`struct.Struct` instances, and every ``unpack_*`` raises
:class:`ValueError` on malformed input (truncated buffers, unknown
types, bad JSON) rather than leaking :class:`struct.error` — a torn
frame from a dying worker is a recoverable condition for the controller.

Frames are transport-agnostic bytes. In process mode they travel over
``multiprocessing.Connection.send_bytes``/``recv_bytes`` (which preserve
message boundaries, so one ``recv_bytes`` is one frame); the length
prefix makes the same bytes safe over any stream transport too, and
:func:`read_frames` reassembles a concatenated byte stream.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Iterator, List, Tuple

_LEN = struct.Struct("!I")
_TYPE = struct.Struct("!B")

#: Worker -> controller: identify (shard index, pid, scenario).
F_HELLO = 1
#: Worker -> controller: request permission to advance to a target time.
F_WINDOW_REQ = 2
#: Controller -> worker: grant advancement up to ``upto`` microseconds.
F_WINDOW_GRANT = 3
#: Worker -> controller: window finished; carries a heartbeat delta.
F_WINDOW_DONE = 4
#: Either direction: a boundary packet crossing shards (plan-open mode).
F_BOUNDARY = 5
#: Worker -> controller: the shard's final result payload.
F_RESULT = 6
#: Worker -> controller: unrecoverable failure (payload: error text).
F_ERROR = 7
#: Controller -> worker: shut down cleanly.
F_BYE = 8

_KNOWN_TYPES = frozenset({
    F_HELLO, F_WINDOW_REQ, F_WINDOW_GRANT, F_WINDOW_DONE,
    F_BOUNDARY, F_RESULT, F_ERROR, F_BYE,
})

#: Hard ceiling on one frame's payload; a result frame for a merged-off
#: campaign stays far below this, and anything larger is a protocol bug.
MAX_FRAME_BYTES = 256 * 1024 * 1024


def pack_frame(ftype: int, body: Dict[str, Any]) -> bytes:
    """Serialize one frame: length prefix + type byte + JSON payload."""
    if ftype not in _KNOWN_TYPES:
        raise ValueError(f"unknown frame type {ftype}")
    # Insertion order is semantic for trace-record field dicts riding in
    # result frames (the identity contract compares canonical JSONL), so
    # frames must round-trip key order, never re-sort it.
    payload = json.dumps(body, separators=(",", ":")).encode()
    length = _TYPE.size + len(payload)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"frame too large ({length} bytes)")
    return _LEN.pack(length) + _TYPE.pack(ftype) + payload


def unpack_frame(data: bytes) -> Tuple[int, Dict[str, Any], int]:
    """Decode one frame from the head of ``data``.

    Returns ``(type, body, consumed_bytes)``; raises :class:`ValueError`
    on truncation, unknown type, or malformed payload.
    """
    if len(data) < _LEN.size:
        raise ValueError("truncated frame: missing length prefix")
    (length,) = _LEN.unpack_from(data, 0)
    if length < _TYPE.size or length > MAX_FRAME_BYTES:
        raise ValueError(f"bad frame length {length}")
    end = _LEN.size + length
    if len(data) < end:
        raise ValueError(
            f"truncated frame: need {end} bytes, have {len(data)}"
        )
    (ftype,) = _TYPE.unpack_from(data, _LEN.size)
    if ftype not in _KNOWN_TYPES:
        raise ValueError(f"unknown frame type {ftype}")
    raw = data[_LEN.size + _TYPE.size : end]
    try:
        body = json.loads(raw.decode()) if raw else {}
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"malformed frame payload: {exc}") from exc
    if not isinstance(body, dict):
        raise ValueError("frame payload must be a JSON object")
    return ftype, body, end


def read_frames(data: bytes) -> Iterator[Tuple[int, Dict[str, Any]]]:
    """Iterate every complete frame in a concatenated byte stream.

    Raises :class:`ValueError` if the stream ends mid-frame — a torn
    tail is corruption, not a clean end.
    """
    offset = 0
    view = memoryview(data)
    while offset < len(data):
        ftype, body, consumed = unpack_frame(bytes(view[offset:]))
        yield ftype, body
        offset += consumed


class FrameConn:
    """Typed frame send/recv over a ``multiprocessing`` connection.

    Thin wrapper: one frame per underlying message, decode errors and
    unexpected frame types surface as :class:`ValueError`.
    """

    def __init__(self, conn: Any) -> None:
        self._conn = conn

    def send(self, ftype: int, body: Dict[str, Any]) -> None:
        self._conn.send_bytes(pack_frame(ftype, body))

    def recv(self) -> Tuple[int, Dict[str, Any]]:
        data = self._conn.recv_bytes()
        ftype, body, consumed = unpack_frame(data)
        if consumed != len(data):
            raise ValueError(
                f"trailing bytes after frame ({len(data) - consumed})"
            )
        return ftype, body

    def recv_expect(self, *types: int) -> Tuple[int, Dict[str, Any]]:
        ftype, body = self.recv()
        if ftype == F_ERROR and F_ERROR not in types:
            raise ValueError(
                f"peer reported error: {body.get('error', '?')}"
            )
        if ftype not in types:
            raise ValueError(
                f"unexpected frame type {ftype}, wanted one of {types}"
            )
        return ftype, body

    def close(self) -> None:
        self._conn.close()

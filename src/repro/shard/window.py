"""Conservative time-window synchronization for sharded runs.

Classic conservative (Chandy–Misra–Bryant-style) discrete-event
synchronization, specialized to the shard plans this repo commits:

* The **lookahead** is the minimum latency of any cross-shard link
  (``plan["cross_shard"]["sync_lookahead_us"]``, validated by
  :func:`repro.shard.plan.sync_window_us`). A boundary packet leaving
  shard A at time ``t`` cannot affect shard B before ``t + lookahead``
  — that is a property of the topology, not a tuning knob.
* Each shard advances in **windows**: it may simulate up to
  ``min(every shard's committed clock) + window`` before waiting. With
  an *open* boundary set the window must equal the lookahead exactly
  (any larger and a boundary packet could land in a shard's past). When
  the plan proves the boundary set **empty** — flow-partitioned apps
  whose every structure is flow-local — the window degenerates to a
  pacing quantum (``chunk_us``) used for heartbeat exchange and
  backpressure; correctness no longer depends on its size, and
  :class:`WindowSchedule` only permits a macro window in that mode.
* :class:`BoundaryBuffer` carries cross-shard packets and enforces the
  law mechanically: a packet may not be delivered before
  ``sent_at + lookahead``, and may never be posted into simulated time
  a receiver has already committed. Violations raise
  :class:`BoundaryViolation` — loudly wrong beats silently diverged.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, List, Optional, Tuple

#: Pacing quantum for boundary-free (plan-closed) runs: how often workers
#: report heartbeat deltas and re-synchronize clocks.
DEFAULT_CHUNK_US = 50_000.0


class BoundaryViolation(RuntimeError):
    """A cross-shard packet broke the lookahead law."""


class WindowSchedule:
    """Pure window math shared by the inline and process runners."""

    def __init__(
        self,
        lookahead_us: float,
        chunk_us: Optional[float] = None,
        boundary_free: bool = False,
    ) -> None:
        if lookahead_us < 0:
            raise ValueError(f"negative lookahead {lookahead_us}")
        self.lookahead_us = float(lookahead_us)
        self.boundary_free = boundary_free
        if boundary_free:
            self.window_us = max(
                float(chunk_us) if chunk_us else DEFAULT_CHUNK_US,
                self.lookahead_us,
            )
        else:
            # Open boundary set: the window IS the lookahead. A chunk
            # request larger than the lookahead would be unsound, so it
            # is ignored rather than honored.
            if self.lookahead_us <= 0:
                raise ValueError(
                    "cannot window an open boundary set with zero lookahead"
                )
            self.window_us = self.lookahead_us

    def __repr__(self) -> str:
        mode = "boundary-free" if self.boundary_free else "strict"
        return (
            f"<WindowSchedule {mode} window={self.window_us}us "
            f"lookahead={self.lookahead_us}us>"
        )


class WindowController:
    """Grants simulated-time windows to shards, conservatively.

    A shard asking to reach ``target`` is granted
    ``min(target, min(all committed clocks) + window)`` — it may never
    run more than one window past the slowest shard. Grants are
    monotone per shard, and :meth:`done` commits the shard's clock.
    """

    def __init__(self, num_shards: int, schedule: WindowSchedule) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1 ({num_shards})")
        self.schedule = schedule
        self.clocks: List[float] = [0.0] * num_shards
        self.grants: List[float] = [0.0] * num_shards

    def request(self, shard: int, now: float, target: float) -> float:
        """The furthest simulated time ``shard`` may advance to."""
        if now < self.clocks[shard]:
            raise ValueError(
                f"shard {shard} clock went backwards "
                f"({now} < {self.clocks[shard]})"
            )
        horizon = min(self.clocks) + self.schedule.window_us
        upto = min(target, max(horizon, now))
        self.grants[shard] = max(self.grants[shard], upto)
        return upto

    def done(self, shard: int, now: float) -> None:
        """Commit ``shard``'s clock at the end of a granted window."""
        if now > self.grants[shard] + 1e-9:
            raise BoundaryViolation(
                f"shard {shard} advanced to {now} past its grant "
                f"{self.grants[shard]}"
            )
        self.clocks[shard] = max(self.clocks[shard], now)

    @property
    def committed(self) -> float:
        """The globally committed simulated time (slowest shard)."""
        return min(self.clocks)


class BoundaryBuffer:
    """In-flight cross-shard packets for one receiving shard.

    Senders :meth:`post` a payload stamped with its send time; the
    receiver :meth:`commit`\\ s simulated time as it advances and drains
    arrivals with :meth:`due`. Both directions of the lookahead law are
    checked at the boundary:

    * an arrival time earlier than ``sent_at + lookahead`` claims the
      wire was faster than the slowest cross-shard link — impossible;
    * an arrival inside already-committed time would rewrite a past the
      receiver has simulated — the window protocol exists to prevent
      exactly this, so it raises instead of silently diverging.
    """

    def __init__(self, lookahead_us: float) -> None:
        if lookahead_us <= 0:
            raise ValueError("boundary buffer needs a positive lookahead")
        self.lookahead_us = float(lookahead_us)
        self.committed_us = 0.0
        self._seq = itertools.count()
        self._heap: List[Tuple[float, int, Any]] = []

    def post(
        self, sent_at: float, payload: Any, arrive_at: Optional[float] = None
    ) -> float:
        """Enqueue a boundary packet; returns its arrival time."""
        earliest = sent_at + self.lookahead_us
        if arrive_at is None:
            arrive_at = earliest
        if arrive_at < earliest - 1e-12:
            raise BoundaryViolation(
                f"boundary packet sent at {sent_at} cannot arrive at "
                f"{arrive_at} (< sent + lookahead {earliest})"
            )
        if arrive_at <= self.committed_us:
            raise BoundaryViolation(
                f"boundary packet arriving at {arrive_at} lands inside "
                f"committed time (<= {self.committed_us})"
            )
        heapq.heappush(self._heap, (arrive_at, next(self._seq), payload))
        return arrive_at

    def commit(self, upto: float) -> None:
        """Mark the receiver as having simulated through ``upto``."""
        if upto < self.committed_us:
            raise ValueError(
                f"commit went backwards ({upto} < {self.committed_us})"
            )
        self.committed_us = upto

    def due(self, horizon: float) -> List[Tuple[float, Any]]:
        """Pop every arrival at or before ``horizon``, in arrival order."""
        out: List[Tuple[float, Any]] = []
        while self._heap and self._heap[0][0] <= horizon:
            arrive_at, _seq, payload = heapq.heappop(self._heap)
            out.append((arrive_at, payload))
        return out

    def __len__(self) -> int:
        return len(self._heap)

"""Per-shard capture: origins, uid births, observations, RNG guard.

The merge layer (:mod:`repro.shard.merge`) reassembles per-shard streams
into the exact byte stream the single-process reference produces. That
needs three sidecars the normal run does not keep:

* **origins** — every root event (scheduled outside any event) gets a
  monotonically increasing *rank*; children inherit it. Setup code runs
  in lockstep on every shard, and ranks advance even for flow
  injections a shard skips, so rank N names the same root everywhere.
  Trace records are tagged with the emitting event's rank plus a
  within-rank emission index: ``(ts, rank, idx)`` is a total order that
  every shard agrees on.
* **uid births** — packet-span uids are allocated in execution order,
  so each shard's uid sequence is a subsequence of the reference's.
  Logging ``(ts, rank, birth_idx)`` per allocation lets the merge
  renumber local uids into the reference's global numbering.
* **histogram observations** — reservoir decimation is order-dependent,
  so merged summaries are rebuilt by replaying the globally merged
  observation log, not by combining per-shard reservoirs.

The recorder also replaces the simulator RNG with a draw-counting
subclass: a campaign whose shards draw randomness *at all* would
diverge (each shard sees a different draw sequence), so identity-mode
runs assert zero draws and anything else is reported honestly.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.shard.assign import find_packet, shard_of
from repro.telemetry.metrics import Gauge, Histogram
from repro.telemetry.trace import TraceRecord

#: Rank used for records emitted outside any event (driver code between
#: ``run()`` calls). Driver code runs in lockstep on every shard, so
#: these are shared records like any shared-rank emission.
DRIVER_RANK = -1


class _CountingRandom(random.Random):
    """A ``random.Random`` that counts every underlying draw.

    All public drawing methods funnel through ``random()`` or
    ``getrandbits()``; counting those two catches every draw without
    changing any returned value.
    """

    def __init__(self, seed: Any, recorder: "ShardRecorder") -> None:
        self._recorder = recorder
        super().__init__(seed)

    def random(self) -> float:
        self._recorder.rng_draws += 1
        return super().random()

    def getrandbits(self, k: int) -> int:
        self._recorder.rng_draws += 1
        return super().getrandbits(k)


class ShardRecorder:
    """Shard-mode sidecar state for one simulator.

    Parameters
    ----------
    shard_index, num_shards:
        This worker's slot. ``num_shards == 1`` with ``ghost=False``
        admits everything (useful for a recorded reference run).
    key_fields:
        The plan's partition-key fields (packet-extractable; see
        :func:`repro.shard.plan.shardability`).
    pinned:
        Plan not flow-partitionable: every flow belongs to shard 0.
    ghost:
        Admit *no* flows. A ghost run executes exactly the shared
        (non-flow) events every shard replicates; the merge subtracts
        its metrics ``N-1`` times to undo that replication.
    capture_records:
        Keep full trace-record rows for byte-identity merging. Off for
        throughput benches, where only counts and metrics are needed.
    """

    def __init__(
        self,
        shard_index: int,
        num_shards: int,
        key_fields: Sequence[str],
        pinned: bool = False,
        ghost: bool = False,
        capture_records: bool = True,
    ) -> None:
        if not 0 <= shard_index < max(num_shards, 1):
            raise ValueError(
                f"shard_index {shard_index} out of range for "
                f"{num_shards} shard(s)"
            )
        self.shard_index = shard_index
        self.num_shards = num_shards
        self.key_fields = list(key_fields)
        self.pinned = pinned
        self.ghost = ghost
        self.capture_records = capture_records
        self.sim: Any = None
        self.rng_draws = 0
        self.flows_injected = 0
        self.flows_skipped = 0
        self._next_rank = 0
        #: rank -> "flow" ranks (injection roots); absent means shared.
        self.flow_ranks: Set[int] = set()
        self.owned_flow_ranks: Set[int] = set()
        #: (ts, rank, idx, TraceRecord) per emitted record, in order.
        self.rows: List[Tuple[float, int, int, TraceRecord]] = []
        self._emit_counts: Dict[int, int] = {}
        #: (ts, rank, birth_idx) per uid; entry i is local uid i+1.
        self.births: List[Tuple[float, int, int]] = []
        self._birth_counts: Dict[int, int] = {}
        #: (describe, ts, rank, obs_idx, value, max_samples) per
        #: histogram observation, in order.
        self.observations: List[Tuple[str, float, int, int, float, Optional[int]]] = []
        self._obs_counts: Dict[int, int] = {}
        #: (describe, ts, rank, op_idx, op, amount) per gauge mutation.
        #: The merge replays these in global order to rebuild gauges
        #: whose value couples flows across shards (running peaks).
        self.gauge_ops: List[Tuple[str, float, int, int, str, float]] = []
        self._gauge_counts: Dict[int, int] = {}

    # -- wiring ---------------------------------------------------------------

    def attach(self, sim: Any, seed: int) -> None:
        """Hook the recorder into a freshly constructed simulator.

        Must run before any event is scheduled or any randomness drawn;
        the RNG is re-seeded with the simulator's own seed so the draw
        sequence is unchanged, merely counted.
        """
        if sim.events_executed or sim.pending_events:
            raise RuntimeError("recorder must attach to a fresh simulator")
        self.sim = sim
        sim.shard_ctx = self
        sim.rng = _CountingRandom(seed, self)
        if self.capture_records:
            sim.tracer.on_emit = self._on_trace_emit
            sim.metrics.on_create = self._on_instrument
            for inst in sim.metrics.instruments():
                self._on_instrument(inst)

    # -- simulator hooks -------------------------------------------------------

    def root_origin(self, fn: Any, args: Tuple) -> Tuple[int, bool]:
        """Allocate the next root rank; decide admission.

        Called by ``Simulator.schedule_at`` for events scheduled outside
        any event. Roots carrying a :class:`~repro.net.packet.Packet`
        are flow injections and are admitted only on the owner shard;
        every other root is shared and always admitted. Ranks advance
        either way, keeping all shards' numbering aligned.
        """
        rank = self._next_rank
        self._next_rank += 1
        pkt = find_packet(args)
        if pkt is None:
            return rank, True
        # The rank sets exist for the merge; capture-off (bench) runs
        # skip them so a 10M-flow population costs counters, not sets.
        if self.capture_records:
            self.flow_ranks.add(rank)
        if self.ghost:
            self.flows_skipped += 1
            return rank, False
        owner = 0 if self.pinned else shard_of(
            pkt, self.key_fields, self.num_shards
        )
        if owner == self.shard_index:
            self.flows_injected += 1
            if self.capture_records:
                self.owned_flow_ranks.add(rank)
            return rank, True
        self.flows_skipped += 1
        return rank, False

    def note_uid(self, uid: int) -> None:
        if not self.capture_records:
            return
        rank = self._current_rank()
        idx = self._birth_counts.get(rank, 0)
        self._birth_counts[rank] = idx + 1
        self.births.append((self.sim.now, rank, idx))

    def _on_trace_emit(self, record: TraceRecord) -> None:
        rank = self._current_rank()
        idx = self._emit_counts.get(rank, 0)
        self._emit_counts[rank] = idx + 1
        self.rows.append((record.ts, rank, idx, record))

    def _on_instrument(self, inst: Any) -> None:
        if isinstance(inst, Histogram):
            inst.on_observe = self._on_observe
        elif isinstance(inst, Gauge):
            inst.on_change = self._on_gauge_change

    def _on_observe(self, hist: Histogram, value: float) -> None:
        rank = self._current_rank()
        idx = self._obs_counts.get(rank, 0)
        self._obs_counts[rank] = idx + 1
        self.observations.append(
            (hist.describe(), self.sim.now, rank, idx, value,
             hist.max_samples)
        )

    def _on_gauge_change(self, gauge: Gauge, op: str, amount: float) -> None:
        # ``set_max`` amounts are *local* absolutes (the shard's own
        # running level), meaningless across shards; the merge derives
        # peaks by replaying the source gauge's add/set stream instead.
        if op == "set_max":
            return
        rank = self._current_rank()
        idx = self._gauge_counts.get(rank, 0)
        self._gauge_counts[rank] = idx + 1
        self.gauge_ops.append(
            (gauge.describe(), self.sim.now, rank, idx, op, float(amount))
        )

    def _current_rank(self) -> int:
        origin = self.sim._origin
        return DRIVER_RANK if origin is None else origin

    # -- export ---------------------------------------------------------------

    @property
    def rank_count(self) -> int:
        return self._next_rank

    def result(self) -> Dict[str, Any]:
        """Plain-data shard result, JSON-serializable for worker frames."""
        sim = self.sim
        return {
            "shard": self.shard_index,
            "num_shards": self.num_shards,
            "ghost": self.ghost,
            "pinned": self.pinned,
            "capture": self.capture_records,
            "events_executed": sim.events_executed,
            "records_emitted": sim.tracer.records_emitted,
            "trace_maxlen": sim.tracer.maxlen,
            "rng_draws": self.rng_draws,
            "flows_injected": self.flows_injected,
            "flows_skipped": self.flows_skipped,
            "rank_count": self._next_rank,
            "flow_ranks": sorted(self.flow_ranks),
            "owned_flow_ranks": sorted(self.owned_flow_ranks),
            "rows": [
                [ts, rank, idx, rec.type, rec.fields]
                for ts, rank, idx, rec in self.rows
            ],
            "births": [list(b) for b in self.births],
            "observations": [list(o) for o in self.observations],
            "gauge_ops": [list(o) for o in self.gauge_ops],
            "metrics": sim.metrics.snapshot(),
            "final_now": sim.now,
        }

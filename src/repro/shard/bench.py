"""Million-flow scaling bench: the BENCH_shard.json producer.

The workload is the CDN-edge campaign of ``examples/million_flow_campaign.py``
made shard-disciplined: a Zipf-popularity packet stream over a huge
distinct-flow population through RedPlane-NAT, periodic control-plane
reclamation of expired flow slots, and one scripted mid-campaign
failover. Three changes against the example make it shardable:

* every injection root carries its :class:`~repro.net.packet.Packet`
  (the admission filter keys flow ownership off the root's arguments);
* the failover names its victim switch explicitly instead of picking
  "the engine with the most packets" (a flow-population-dependent choice
  that would diverge across shards);
* the flow population is *streamed*: packets draw their flow rank
  through an analytic inverse-CDF Zipf sampler (O(1) per draw, no
  cumulative-mass table), and injections are scheduled in bounded
  batches between ``pace()`` calls, so neither a 10M-entry table nor a
  10M-event heap ever materializes.

Scaling methodology (this container pins the suite to few cores, often
one): the committed shard plan proves the flow partition has an empty
cross-shard boundary set, so shards never wait on each other and each
shard's *isolated* wall time is an honest stand-in for a dedicated
core. The curve therefore reports **critical-path throughput** —
``packets / max(per-shard wall)`` — alongside the raw sequential walls
it was derived from; both numbers and the cpu count are recorded so the
reader can judge the claim.
"""

from __future__ import annotations

import json
import os
import random
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.telemetry import ScopedTimer

#: Zipf exponent (matches examples/million_flow_campaign.py).
ZIPF_S = 1.05
#: Lease tuning: head flows renew, tail flows expire and recycle SRAM.
LEASE_US = 400_000.0
RECLAIM_EVERY_US = 800_000.0
SPACING_US = 32.0  # paced to the 88 us serial control-plane install cost
#: The scripted mid-campaign victim (ECMP spreads flows over both agg
#: switches; failing either one exercises migration the same way).
MF_FAIL_SWITCH = "agg1"
#: Injections scheduled per driver batch: bounds the event heap.
MF_BATCH = 4096

#: Default campaign shape for the committed scaling curve.
DEFAULT_PACKETS = 130_000
DEFAULT_POPULATION = 1_000_000
#: Draw-stream seed (independent of the simulator seed; the draw RNG
#: lives in the driver, runs in lockstep on every shard, and never
#: touches ``sim.rng``).
DRAW_SEED = 24

BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))),
    "BENCH_shard.json",
)


def zipf_rank(u: float, population: int, s: float = ZIPF_S) -> int:
    """Analytic inverse-CDF Zipf: map uniform ``u`` to a 1-based rank.

    Continuous bounded-Pareto approximation of the zeta distribution —
    O(1) per draw and streamable, unlike bisection over a cumulative
    mass table (which materializes ``population`` floats up front).
    Exact enough for a popularity workload: the head ranks keep their
    mass within a fraction of a percent of the discrete law.
    """
    if population < 1:
        raise ValueError("population must be >= 1")
    if s == 1.0:
        rank = int(population ** u)
    else:
        rank = int(
            (u * (population ** (1.0 - s) - 1.0) + 1.0) ** (1.0 / (1.0 - s))
        )
    return min(max(rank, 1), population)


def flow_ports(flow_id: int) -> tuple:
    """Distinct (sport, dport) per flow rank — millions of 5-tuples."""
    return 2000 + flow_id % 60000, 1000 + flow_id // 60000


def run_million_flow_scenario(
    sim: Any,
    pace: Callable[[float], None],
    fastpath: bool = False,
    packets: int = DEFAULT_PACKETS,
    population: int = DEFAULT_POPULATION,
    fail_switch: Optional[str] = MF_FAIL_SWITCH,
    batch: int = MF_BATCH,
) -> Dict[str, Any]:
    """The shard-disciplined million-flow campaign driver."""
    from repro import RedPlaneConfig, deploy
    from repro.apps.nat import NatApp, install_nat_routes
    from repro.net.packet import Packet

    dep = deploy(sim, NatApp, config=RedPlaneConfig(
        lease_period_us=LEASE_US,
        renew_interval_us=LEASE_US / 2,
        max_flows=65_536,
        record_history=False,
    ))
    install_nat_routes(dep.bed)
    if fastpath:
        from repro.fastpath.runtime import FastPath

        FastPath.install(sim)
    sender = dep.bed.servers[0]
    dst_ip = dep.bed.externals[0].ip

    t_traffic_end = packets * SPACING_US
    t_end = t_traffic_end + 3 * LEASE_US
    t_fail = t_traffic_end / 2.0 if fail_switch else None

    def reclaim() -> None:
        freed = sum(e.reclaim_idle_flows() for e in dep.engines.values())
        if freed:
            sim.count("example.reclaimed", freed)  # repro: noqa[RT304] -- campaign-local bookkeeping counter shared with examples/million_flow_campaign.py
        if sim.now < t_end:
            sim.schedule(RECLAIM_EVERY_US, reclaim)

    sim.schedule_at(RECLAIM_EVERY_US, reclaim)

    # Stream the draw sequence: one uniform draw per packet, scheduled
    # in bounded batches with a pace() between them. The driver runs in
    # lockstep on every shard, so each shard sees the identical stream
    # and the admission filter picks its own flows out of it.
    draws = random.Random(DRAW_SEED)
    failed = False
    sent = 0
    while sent < packets:
        batch_end = min(sent + batch, packets)
        for i in range(sent, batch_end):
            when = i * SPACING_US
            if t_fail is not None and not failed and when >= t_fail:
                # Reach the failover point before injecting past it.
                pace(t_fail)
                dep.bed.topology.fail_node(
                    dep.engines[fail_switch].switch,
                    detect_delay_us=25_000.0,
                )
                failed = True
            rank = zipf_rank(draws.random(), population)
            sport, dport = flow_ports(rank)
            sim.schedule_at(
                when, sender.send,
                Packet.udp(sender.ip, dst_ip, sport, dport),
            )
        sent = batch_end
        pace(sent * SPACING_US)
    if t_fail is not None and not failed:
        pace(t_fail)
        dep.bed.topology.fail_node(
            dep.engines[fail_switch].switch, detect_delay_us=25_000.0,
        )
    pace(t_end)

    apps = {id(e.app): e.app for e in dep.engines.values()}
    translated = sum(a.translated_out for a in apps.values())
    return {
        "packets": packets,
        "population": population,
        "translated": translated,
        "reclaimed": int(sim.counters.get("example.reclaimed", 0)),
    }


# -- scaling curve ------------------------------------------------------------


def bench_point(
    workers: int,
    packets: int = DEFAULT_PACKETS,
    population: int = DEFAULT_POPULATION,
    fastpath: bool = True,
    heartbeat_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """One point of the scaling curve: a capture-off sharded run."""
    from repro.shard.runner import resolve, run_sharded

    config = resolve(
        "million_flow", workers, capture=False, fastpath=fastpath,
        heartbeat_dir=heartbeat_dir,
        params={"packets": packets, "population": population},
    )
    with ScopedTimer("shard_bench_total") as timer:
        merged = run_sharded(config, mode="inline")
    total_wall = timer.elapsed_s
    max_shard = merged["wall_s_max_shard"]
    return {
        "workers": workers,
        "packets": packets,
        "population": population,
        "fastpath": fastpath,
        "events": merged["events"],
        "flows_injected": merged["flows_injected"],
        "flows_per_shard": merged["flows_per_shard"],
        "translated": (merged.get("extra") or {}).get("translated"),
        "wall_s_per_shard": merged["wall_s_per_shard"],
        "wall_s_max_shard": max_shard,
        "wall_s_ghost": merged["wall_s_ghost"],
        "wall_s_total_sequential": total_wall,
        "pps_critical_path": packets / max_shard if max_shard else 0.0,
    }


def run_scaling_curve(
    workers_list: Sequence[int] = (1, 2, 4, 8),
    packets: int = DEFAULT_PACKETS,
    population: int = DEFAULT_POPULATION,
    fastpath: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Dict[str, Any]]:
    """Run the worker-count sweep; annotate speedups against 1 worker."""
    curve: List[Dict[str, Any]] = []
    for workers in workers_list:
        if progress:
            progress(f"workers={workers} packets={packets:,} "
                     f"population={population:,} ...")
        point = bench_point(
            workers, packets=packets, population=population,
            fastpath=fastpath,
        )
        curve.append(point)
        if progress:
            progress(f"workers={workers}: critical-path "
                     f"{point['pps_critical_path']:.0f} pps "
                     f"(max shard {point['wall_s_max_shard']:.2f}s)")
    base = curve[0]["pps_critical_path"]
    for point in curve:
        point["speedup_vs_1_worker"] = (
            point["pps_critical_path"] / base if base else 0.0
        )
    return curve


def bench_payload(
    curve: List[Dict[str, Any]],
    ten_million: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "format": 1,
        "cpus": os.cpu_count(),
        "methodology": (
            "critical-path throughput: shards run sequentially in one "
            "process; pps = packets / max(per-shard isolated wall). "
            "Honest on a pinned-cpu container because the committed "
            "shard plan proves the boundary set empty (no shard ever "
            "waits on another); wall_s_total_sequential is the raw "
            "sequential cost for comparison."
        ),
        "curve": curve,
    }
    if ten_million is not None:
        payload["ten_million"] = ten_million
    return payload


def write_bench(path: str = BENCH_PATH, **payload: Any) -> None:
    existing: Dict[str, Any] = {}
    if os.path.exists(path):
        with open(path) as fh:
            existing = json.load(fh)
    existing.update(payload)
    with open(path, "w") as fh:
        json.dump(existing, fh, indent=2, sort_keys=True)
        fh.write("\n")

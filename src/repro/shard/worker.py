"""Spawned-process shard workers and their frame protocol.

Process mode: the parent spawns one worker per shard (``spawn`` context
— a fresh interpreter, so bootstrap state must be picklable JSON
scalars, see :class:`ShardSpec`), connects each over a
``multiprocessing.Pipe``, and serves conservative window grants while
workers simulate. All traffic is length-prefixed frames
(:mod:`repro.shard.frames`):

worker -> controller: ``HELLO``, then ``WINDOW_REQ``/``WINDOW_DONE``
per window, finally ``RESULT`` (the full shard result) or ``ERROR``;
controller -> worker: ``WINDOW_GRANT`` per request, ``BYE`` at the end.

The ghost run stays in the parent (it admits no flows and is cheap),
executed after every worker result is in.
"""

from __future__ import annotations

import multiprocessing
import traceback
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.shard.frames import (
    F_BYE,
    F_ERROR,
    F_HELLO,
    F_RESULT,
    F_WINDOW_DONE,
    F_WINDOW_GRANT,
    F_WINDOW_REQ,
    FrameConn,
)
from repro.shard.window import WindowController, WindowSchedule


@dataclass
class ShardSpec:
    """Picklable worker bootstrap: nothing but JSON scalars.

    The spawn context re-imports everything in the child, so the spec
    carries names and numbers, never live objects — the worker rebuilds
    scenario, plan-derived key fields, and recorder from these.
    """

    scenario: str
    shard_index: int
    num_shards: int
    seed: int
    key_fields: List[str]
    pinned: bool
    lookahead_us: float
    window_us: float
    fastpath: bool = False
    capture: bool = True
    heartbeat_dir: Optional[str] = None
    heartbeat_interval_us: float = 1_000.0
    params: Dict[str, Any] = field(default_factory=dict)


def worker_main(conn: Any, spec_dict: Dict[str, Any]) -> None:
    """Worker process entry point: run one shard, frame-synchronized."""
    spec = ShardSpec(**spec_dict)
    fc = FrameConn(conn)
    try:
        from repro.shard.runner import ShardRunConfig, run_one_shard
        from repro.shard.scenarios import get_scenario

        fc.send(F_HELLO, {
            "shard": spec.shard_index, "scenario": spec.scenario,
        })
        config = ShardRunConfig(
            scenario=get_scenario(spec.scenario),
            workers=spec.num_shards,
            plan={},
            key_fields=list(spec.key_fields),
            pinned=spec.pinned,
            pin_reason="",
            lookahead_us=spec.lookahead_us,
            schedule=WindowSchedule(
                spec.lookahead_us, chunk_us=spec.window_us,
                boundary_free=True,
            ),
            seed=spec.seed,
            fastpath=spec.fastpath,
            capture=spec.capture,
            heartbeat_dir=spec.heartbeat_dir,
            heartbeat_interval_us=spec.heartbeat_interval_us,
            params=dict(spec.params),
        )

        def pace_hook(sim: Any, until: float) -> None:
            while sim.now < until:
                fc.send(F_WINDOW_REQ, {
                    "shard": spec.shard_index,
                    "now": sim.now,
                    "target": until,
                })
                _ftype, body = fc.recv_expect(F_WINDOW_GRANT)
                sim.run(until=float(body["upto"]))
                fc.send(F_WINDOW_DONE, {
                    "shard": spec.shard_index, "now": sim.now,
                })

        result = run_one_shard(
            config, spec.shard_index, pace_hook=pace_hook
        )
        fc.send(F_RESULT, result)
        fc.recv_expect(F_BYE)
    except Exception:
        try:
            fc.send(F_ERROR, {"error": traceback.format_exc()})
        except Exception:
            pass
    finally:
        fc.close()


def run_process_shards(config: Any) -> List[Dict[str, Any]]:
    """Spawn one worker per shard, serve window grants, collect results.

    ``config`` is a :class:`repro.shard.runner.ShardRunConfig`. Returns
    the shard results in shard order. A worker error tears the whole
    run down with its traceback — a partial merge would be meaningless.
    """
    ctx = multiprocessing.get_context("spawn")
    controller = WindowController(config.workers, config.schedule)
    conns: List[Any] = []
    procs: List[Any] = []
    for index in range(config.workers):
        parent_conn, child_conn = ctx.Pipe()
        spec = ShardSpec(
            scenario=config.scenario.name,
            shard_index=index,
            num_shards=config.workers,
            seed=config.seed,
            key_fields=list(config.key_fields),
            pinned=config.pinned,
            lookahead_us=config.lookahead_us,
            window_us=config.schedule.window_us,
            fastpath=config.fastpath,
            capture=config.capture,
            heartbeat_dir=config.heartbeat_dir,
            heartbeat_interval_us=config.heartbeat_interval_us,
            params=dict(config.params),
        )
        proc = ctx.Process(
            target=worker_main, args=(child_conn, asdict(spec)),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        conns.append(FrameConn(parent_conn))
        procs.append(proc)

    results: List[Optional[Dict[str, Any]]] = [None] * config.workers
    index_of = {id(fc._conn): i for i, fc in enumerate(conns)}
    try:
        pending = set(range(config.workers))
        while pending:
            ready = multiprocessing.connection.wait(
                [conns[i]._conn for i in sorted(pending)],
                timeout=300.0,
            )
            if not ready:
                raise RuntimeError(
                    f"shard workers stalled (pending: {sorted(pending)})"
                )
            for raw in ready:
                index = index_of[id(raw)]
                fc = conns[index]
                ftype, body = fc.recv()
                if ftype == F_HELLO:
                    continue
                if ftype == F_WINDOW_REQ:
                    upto = controller.request(
                        int(body["shard"]), float(body["now"]),
                        float(body["target"]),
                    )
                    fc.send(F_WINDOW_GRANT, {"upto": upto})
                elif ftype == F_WINDOW_DONE:
                    controller.done(int(body["shard"]), float(body["now"]))
                elif ftype == F_RESULT:
                    results[index] = body
                    fc.send(F_BYE, {})
                    pending.discard(index)
                elif ftype == F_ERROR:
                    raise RuntimeError(
                        f"shard worker {index} failed:\n"
                        f"{body.get('error', '?')}"
                    )
                else:
                    raise RuntimeError(
                        f"unexpected frame type {ftype} from worker {index}"
                    )
    finally:
        for proc in procs:
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.terminate()
        for fc in conns:
            try:
                fc.close()
            except OSError:
                pass

    missing = [i for i, r in enumerate(results) if r is None]
    if missing:
        raise RuntimeError(f"no result from shard(s) {missing}")
    return results  # type: ignore[return-value]

"""Shard-runnable scenario drivers.

A scenario here is the exact same campaign whether it runs as the
single-process reference, as one shard of N, or as the ghost: one
deterministic driver function, parameterized only by which simulator it
gets. That is what makes the identity contract meaningful — the
reference and the shards execute *the same code*, differing only in
which flow-injection roots the shard admission filter lets through.

Driver discipline (enforced by construction, documented in
docs/SHARDING.md):

* every flow injection is scheduled with the :class:`Packet` in the
  root event's arguments, so the admission filter can key it;
* all phase boundaries are *absolute* simulated times — never
  ``sim.now + delta`` after a drain, because ``sim.now`` after an idle
  drain depends on which flows the shard owns;
* failures name their target switch explicitly — never "the engine
  with the most packets", which is flow-population-dependent;
* nothing after setup draws from ``sim.rng`` (the recorder counts
  draws; identity runs assert zero).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

#: Quickstart phase boundaries (absolute simulated microseconds).
QS_PHASE1_END = 100_000.0
QS_FAIL_RECOVER_US = 400_000.0
QS_PHASE2_START = QS_PHASE1_END + QS_FAIL_RECOVER_US
QS_END = 700_000.0
#: The switch carrying the quickstart flow (ECMP is deterministic for
#: the fixed 5-tuple; scripted so every shard fails the same node).
QS_FAIL_SWITCH = "agg2"

#: NAT steady-state scenario shape (the fast-path benchmark workload,
#: with the packet in the injection root's arguments).
NAT_FLOWS = 12
NAT_PACKETS_PER_FLOW = 40
NAT_SPACING_US = 2.0
#: Flow starts are staggered: a new NAT flow's first packet triggers a
#: control-plane table install, and the switch CPU is a *serialized*
#: resource (``constants.CONTROL_PLANE_OP_US`` = 88us per op). Starts
#: spaced wider than the install pipeline keep the CPU queue empty at
#: every submit, so per-flow timing stays interleaving-independent —
#: the property the bit-identity contract needs. Overlapping starts are
#: genuine cross-flow coupling, and the identity gate fails honestly.
NAT_FLOW_STAGGER_US = 400.0
NAT_END = 150_000.0
#: The switch carrying the single nat_quickstart flow (deterministic
#: ECMP for the fixed 5-tuple; scripted so every shard fails the same
#: node).
NATQS_FAIL_SWITCH = "agg2"

#: Seed every chaos campaign runs under (the chaos CLI default).
CHAOS_SEED = 42


@dataclass
class Scenario:
    """One registered scenario: the app whose shard plan governs it,
    its default seed, and the driver function."""

    name: str
    app: str
    seed: int
    fn: Callable[..., Dict[str, Any]]
    params: Dict[str, Any] = field(default_factory=dict)


def run_quickstart(
    sim: Any,
    pace: Callable[[float], None],
    fastpath: bool = False,
    packets: int = 10,
) -> Dict[str, Any]:
    """The ``repro.tools run`` quickstart, shard-disciplined.

    One Sync-Counter flow, a scripted owner failover mid-run, a second
    burst after lease migration, resource gauges at the end.
    """
    from repro import deploy
    from repro.apps.counter import SyncCounterApp
    from repro.net.packet import Packet

    dep = deploy(sim, SyncCounterApp)
    if fastpath:
        from repro.fastpath.runtime import FastPath

        FastPath.install(sim)
    sender = dep.bed.externals[0]
    receiver = dep.bed.servers[0]

    for i in range(packets):
        sim.schedule_at(
            i * 200.0, sender.send,
            Packet.udp(sender.ip, receiver.ip, 5555, 7777),
        )
    pace(QS_PHASE1_END)

    dep.bed.topology.fail_node(dep.engines[QS_FAIL_SWITCH].switch)
    pace(QS_PHASE2_START)

    for i in range(packets):
        sim.schedule_at(
            QS_PHASE2_START + i * 200.0, sender.send,
            Packet.udp(sender.ip, receiver.ip, 5555, 7777),
        )
    pace(QS_END)

    for name in sorted(dep.engines):
        dep.engines[name].resource_usage()
    return {"packets": 2 * packets}


def run_nat_steady(
    sim: Any,
    pace: Callable[[float], None],
    fastpath: bool = False,
    flows: int = NAT_FLOWS,
    packets_per_flow: int = NAT_PACKETS_PER_FLOW,
) -> Dict[str, Any]:
    """RedPlane-NAT steady state (the fast-path benchmark workload)."""
    from repro import deploy
    from repro.apps.nat import NatApp, install_nat_routes
    from repro.net.packet import Packet

    dep = deploy(sim, NatApp)
    install_nat_routes(dep.bed)
    if fastpath:
        from repro.fastpath.runtime import FastPath

        FastPath.install(sim)
    sender = dep.bed.servers[0]
    dst_ip = dep.bed.externals[0].ip

    for f in range(flows):
        for p in range(packets_per_flow):
            sim.schedule_at(
                f * NAT_FLOW_STAGGER_US + p * NAT_SPACING_US,
                sender.send,
                Packet.udp(sender.ip, dst_ip, 5000 + f, 7777),
            )
    pace(NAT_END)

    apps = {id(e.app): e.app for e in dep.engines.values()}
    packets = sum(app.translated_out for app in apps.values())
    return {"packets": packets, "flows": flows}


def run_nat_quickstart(
    sim: Any,
    pace: Callable[[float], None],
    fastpath: bool = False,
    packets: int = 10,
) -> Dict[str, Any]:
    """The quickstart story on the NAT app: one translated flow, a
    scripted failover of the switch holding its translation entry, a
    second burst served after lease migration."""
    from repro import deploy
    from repro.apps.nat import NatApp, install_nat_routes
    from repro.net.packet import Packet

    dep = deploy(sim, NatApp)
    install_nat_routes(dep.bed)
    if fastpath:
        from repro.fastpath.runtime import FastPath

        FastPath.install(sim)
    sender = dep.bed.servers[0]
    dst_ip = dep.bed.externals[0].ip

    for i in range(packets):
        sim.schedule_at(
            i * 200.0, sender.send,
            Packet.udp(sender.ip, dst_ip, 5555, 7777),
        )
    pace(QS_PHASE1_END)

    dep.bed.topology.fail_node(dep.engines[NATQS_FAIL_SWITCH].switch)
    pace(QS_PHASE2_START)

    for i in range(packets):
        sim.schedule_at(
            QS_PHASE2_START + i * 200.0, sender.send,
            Packet.udp(sender.ip, dst_ip, 5555, 7777),
        )
    pace(QS_END)

    for name in sorted(dep.engines):
        dep.engines[name].resource_usage()
    apps = {id(e.app): e.app for e in dep.engines.values()}
    translated = sum(app.translated_out for app in apps.values())
    return {"packets": 2 * packets, "translated": translated}


def _make_chaos_runner(campaign_name: str) -> Callable[..., Dict[str, Any]]:
    def run_chaos(
        sim: Any,
        pace: Callable[[float], None],
        fastpath: bool = False,
    ) -> Dict[str, Any]:
        from repro.chaos.campaigns import CAMPAIGNS
        from repro.chaos.runner import run_campaign_result

        campaign = CAMPAIGNS[campaign_name]
        # The chaos runner owns its drive loop (absolute times
        # throughout), so the whole campaign is one window.
        result = run_campaign_result(
            campaign,
            seed=CHAOS_SEED,
            fastpath=fastpath,
            sim_factory=lambda _seed: sim,
        )
        pace(sim.now)
        return {
            "campaign": campaign_name,
            "packets": result.workload.delivered,
            "verdict": result.report.get("verdict"),
        }

    return run_chaos


def get_scenario(name: str) -> Scenario:
    """Resolve a scenario by registry name (``chaos:<campaign>`` works
    for every registered chaos campaign)."""
    if name == "quickstart":
        return Scenario(name, app="sync_counter", seed=7, fn=run_quickstart)
    if name == "nat_quickstart":
        return Scenario(name, app="nat", seed=7, fn=run_nat_quickstart)
    if name == "nat_steady":
        return Scenario(name, app="nat", seed=5, fn=run_nat_steady)
    if name == "million_flow":
        from repro.shard.bench import run_million_flow_scenario

        return Scenario(name, app="nat", seed=23,
                        fn=run_million_flow_scenario)
    if name.startswith("chaos:"):
        campaign = name.split(":", 1)[1]
        from repro.chaos.campaigns import CAMPAIGNS

        if campaign not in CAMPAIGNS:
            raise KeyError(
                f"unknown chaos campaign {campaign!r}; have: "
                f"{', '.join(sorted(CAMPAIGNS))}"
            )
        # EchoCounterApp subclasses SyncCounterApp, so the committed
        # sync_counter plan governs its state partition.
        return Scenario(name, app="sync_counter", seed=CHAOS_SEED,
                        fn=_make_chaos_runner(campaign))
    raise KeyError(
        f"unknown scenario {name!r}; have: quickstart, nat_quickstart, "
        "nat_steady, million_flow, chaos:<campaign>"
    )


def scenario_names() -> list:
    """The fixed scenarios plus one entry per chaos campaign."""
    from repro.chaos.campaigns import CAMPAIGNS

    return ["quickstart", "nat_quickstart", "nat_steady", "million_flow"] + [
        f"chaos:{name}" for name in sorted(CAMPAIGNS)
    ]

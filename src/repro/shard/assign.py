"""Flow-to-shard assignment from a plan's partition key.

A shard plan (``shard_plans/<app>.json``) names the packet fields that
key every flow-partitionable structure. This module turns those fields
into a deterministic worker assignment: extract the key tuple from a
packet, canonicalize it so both directions of a connection land on the
same worker, and hash it with CRC-32 (stable across processes and
Python versions, unlike ``hash()``).
"""

from __future__ import annotations

import zlib
from typing import Optional, Sequence, Tuple

from repro.net.packet import FlowKey, Packet

#: The full 5-tuple, as plans spell it (sorted field order).
FIVE_TUPLE = ("ip.dst", "ip.proto", "ip.src", "l4.dport", "l4.sport")

#: Packet fields a shard assignment may key on. ``payload``-keyed plans
#: (flow_hash over message contents) are not packet-extractable here and
#: get pinned instead (see :mod:`repro.shard.plan`).
_EXTRACTORS = {
    "ip.src": lambda pkt: pkt.ip.src if pkt.ip else 0,
    "ip.dst": lambda pkt: pkt.ip.dst if pkt.ip else 0,
    "ip.proto": lambda pkt: pkt.ip.proto if pkt.ip else 0,
    "l4.sport": lambda pkt: pkt.l4.sport if pkt.l4 else 0,
    "l4.dport": lambda pkt: pkt.l4.dport if pkt.l4 else 0,
    "vlan": lambda pkt: pkt.vlan if pkt.vlan is not None else 0,
}


def extractable(fields: Sequence[str]) -> bool:
    """Whether every key field can be read off a packet header."""
    return bool(fields) and all(f in _EXTRACTORS for f in fields)


def key_bytes(pkt: Packet, fields: Sequence[str]) -> bytes:
    """The canonical key bytes of ``pkt`` under a plan's key fields.

    When the fields are the full 5-tuple, the canonical (direction-
    independent) :class:`FlowKey` packing is used so that a flow and its
    reverse direction always share a shard — the same canonicalization
    the NAT state partition itself uses. Other field subsets are packed
    positionally in sorted field order.
    """
    ordered = tuple(sorted(fields))
    if ordered == FIVE_TUPLE:
        if pkt.ip is None:
            return b""
        return pkt.flow_key().canonical().pack()
    parts = []
    for field in ordered:
        extractor = _EXTRACTORS.get(field)
        if extractor is None:
            raise ValueError(f"cannot extract shard key field {field!r}")
        parts.append(str(extractor(pkt)))
    return "|".join(parts).encode()


def shard_of(pkt: Packet, fields: Sequence[str], num_shards: int) -> int:
    """The worker index owning ``pkt``'s flow (0 .. num_shards-1).

    Packets without the keyed headers (e.g. a bare L2 frame under an
    IP-keyed plan) all map to shard 0 so they are simulated exactly once.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1 ({num_shards})")
    if num_shards == 1:
        return 0
    data = key_bytes(pkt, fields)
    if not data:
        return 0
    return zlib.crc32(data) % num_shards


def shard_of_flow_key(key: FlowKey, num_shards: int) -> int:
    """Assignment for an explicit 5-tuple key (used by generators that
    want to know a flow's owner without building a packet)."""
    if num_shards == 1:
        return 0
    return zlib.crc32(key.canonical().pack()) % num_shards


def find_packet(args: Tuple) -> Optional[Packet]:
    """The first :class:`Packet` among a root event's arguments.

    Root events carrying a packet are flow injections — the only roots a
    shard filters. Everything else (fault schedules, monitors, reclaim
    sweeps) is shared and runs on every shard.
    """
    for arg in args:
        if isinstance(arg, Packet):
            return arg
    return None

"""Deterministic merge of per-shard results into the reference stream.

Given N shard results plus one *ghost* result (a run that admitted no
flows — exactly the shared events every shard replicates), reassemble
what the single-process reference run would have produced:

* **trace stream** — shared-rank records (validated identical on every
  shard, kept once) plus each shard's owned-flow records, globally
  sorted by ``(ts, rank, within-rank index)``;
* **uids** — per-shard uid-birth logs merged with the same comparator;
  a local uid's global value is its birth's position in the merged
  order, and every uid-bearing trace field is rewritten;
* **metrics** — counters and gauges obey
  ``merged = sum(shards) - (N-1) * ghost`` (shared instruments are
  replicated N times and the ghost run measures exactly the replicated
  part once); peak-tracking gauges are instead recomputed by replaying
  their source gauge's operation log in global order (the reference's
  instantaneous level couples flows across shards, so no per-shard
  combination of final values can recover it); histogram summaries are
  rebuilt by replaying the globally merged observation log through a
  fresh reservoir, because decimation is order-dependent.

Every assumption is checked, not trusted: shards that disagree on a
shared record, a birth, or an instrument raise :class:`MergeError`
with the first divergence — an honest failure beats a silently wrong
merge.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.telemetry.metrics import Histogram
from repro.telemetry.trace import TraceRecord

#: Trace fields holding packet-span uids (rewritten during the merge).
#: ``cause`` is the optional originating-request uid an ack record
#: carries (see ``repro.core.engine``).
UID_FIELDS = frozenset({"uid", "parent", "req_uid", "parent_uid", "cause"})

#: Peak-tracking gauges couple flows across shards: the reference's
#: instantaneous level (all flows interleaved) can exceed every
#: per-shard peak, so neither max-across-shards nor sum-minus-ghost is
#: right. Each peak is recomputed by replaying its *source* gauge's
#: operation stream in global order and taking the running maximum
#: (labels carry over unchanged; a subtract can never raise a maximum,
#: so the running max over the full add/set stream is exact).
PEAK_GAUGE_SOURCES = {
    "switch.buffer_peak_bytes": "switch.buffer_occupancy_bytes",
}

#: Metric families excluded from identity comparison: per-shard
#: bookkeeping, cache internals, and observation-layer output.
NON_IDENTITY_PREFIXES = ("shard.", "fastpath.", "observe.")


class MergeError(RuntimeError):
    """Shard results are inconsistent with a single merged reality."""


def _is_peak_gauge(ident: str) -> bool:
    return ident.split("{", 1)[0] in PEAK_GAUGE_SOURCES


# -- uid renumbering ----------------------------------------------------------


def _merge_births(
    shards: Sequence[Dict[str, Any]], ghost: Dict[str, Any]
) -> Tuple[List[Tuple[float, int, int]], List[Dict[int, int]]]:
    """Merge uid-birth logs; returns (merged births, per-shard uid maps).

    Shared-rank births must be identical on every shard (and the ghost);
    they enter the merged order once. Each shard's owned-flow births are
    unique to it. The merged position (1-based) is the global uid.
    """
    flow_ranks = set(shards[0]["flow_ranks"])
    shared_seqs = []
    for res in list(shards) + [ghost]:
        shared_seqs.append([
            tuple(b) for b in res["births"] if b[1] not in flow_ranks
        ])
    for i, seq in enumerate(shared_seqs[1:], start=1):
        if seq != shared_seqs[0]:
            label = "ghost" if i == len(shards) else f"shard {i}"
            raise MergeError(
                f"shared uid births diverge between shard 0 and {label}: "
                f"{_first_diff(shared_seqs[0], seq)}"
            )
    entries: List[Tuple[float, int, int]] = list(shared_seqs[0])
    for res in shards:
        owned = set(res["owned_flow_ranks"])
        entries.extend(
            tuple(b) for b in res["births"] if b[1] in owned
        )
    entries.sort()
    position = {
        (rank, idx): uid
        for uid, (_ts, rank, idx) in enumerate(entries, start=1)
    }
    uid_maps: List[Dict[int, int]] = []
    for res in shards:
        mapping = {
            local: position[(rank, idx)]
            for local, (_ts, rank, idx) in enumerate(
                (tuple(b) for b in res["births"]), start=1
            )
        }
        uid_maps.append(mapping)
    return entries, uid_maps


def _first_diff(a: Sequence[Any], b: Sequence[Any]) -> str:
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return f"index {i}: {x!r} != {y!r}"
    return f"length {len(a)} != {len(b)}"


def _remap_fields(
    fields: Dict[str, Any], uid_map: Dict[int, int], where: str
) -> Dict[str, Any]:
    out = dict(fields)
    for key, value in fields.items():
        if key in UID_FIELDS and isinstance(value, int):
            mapped = uid_map.get(value)
            if mapped is None:
                raise MergeError(
                    f"{where}: field {key}={value} references a uid "
                    "never born on that shard"
                )
            out[key] = mapped
    return out


# -- trace merge --------------------------------------------------------------


def _validate_partition(shards: Sequence[Dict[str, Any]]) -> None:
    base = shards[0]
    for res in shards[1:]:
        for field in ("rank_count", "flow_ranks", "num_shards",
                      "trace_maxlen"):
            if res[field] != base[field]:
                raise MergeError(
                    f"shard {res['shard']} disagrees on {field}: "
                    f"{res[field]!r} != {base[field]!r}"
                )
    flow_ranks = set(base["flow_ranks"])
    owned_union: set = set()
    for res in shards:
        owned = set(res["owned_flow_ranks"])
        overlap = owned_union & owned
        if overlap:
            raise MergeError(
                f"flow rank(s) {sorted(overlap)[:4]} owned by more than "
                "one shard"
            )
        owned_union |= owned
    if owned_union != flow_ranks:
        missing = sorted(flow_ranks - owned_union)[:4]
        raise MergeError(
            f"flow rank(s) {missing} owned by no shard "
            "(population/assignment mismatch)"
        )


def _merge_rows(
    shards: Sequence[Dict[str, Any]],
    ghost: Dict[str, Any],
    uid_maps: Sequence[Dict[int, int]],
    ghost_uid_map: Dict[int, int],
) -> List[Tuple[float, int, int, str, Dict[str, Any]]]:
    flow_ranks = set(shards[0]["flow_ranks"])

    def shared_rows(res, uid_map):
        label = "ghost" if res is ghost else f"shard {res['shard']}"
        return [
            (ts, rank, idx, type_,
             _remap_fields(fields, uid_map, f"{label} rank {rank}"))
            for ts, rank, idx, type_, fields in res["rows"]
            if rank not in flow_ranks
        ]

    reference_shared = shared_rows(shards[0], uid_maps[0])
    for res, uid_map in list(zip(shards[1:], uid_maps[1:])) + [
        (ghost, ghost_uid_map)
    ]:
        other = shared_rows(res, uid_map)
        if other != reference_shared:
            label = "ghost" if res is ghost else f"shard {res['shard']}"
            raise MergeError(
                f"shared trace records diverge between shard 0 and "
                f"{label}: {_first_diff(reference_shared, other)}"
            )
    merged = list(reference_shared)
    for res, uid_map in zip(shards, uid_maps):
        owned = set(res["owned_flow_ranks"])
        merged.extend(
            (ts, rank, idx, type_,
             _remap_fields(fields, uid_map, f"shard {res['shard']}"))
            for ts, rank, idx, type_, fields in res["rows"]
            if rank in owned
        )
    merged.sort(key=lambda row: (row[0], row[1], row[2]))
    return merged


def trace_digest(records: Sequence[TraceRecord]) -> str:
    """Same digest formula as :func:`repro.fastpath.bench._trace_digest`."""
    h = hashlib.sha256()
    for record in records:
        h.update(
            repr((record.ts, record.type, tuple(record.fields.items())))
            .encode()
        )
    return h.hexdigest()


def rows_to_records(
    rows: Sequence[Tuple[float, int, int, str, Dict[str, Any]]]
) -> List[TraceRecord]:
    return [TraceRecord(ts, type_, fields) for ts, _r, _i, type_, fields in rows]


# -- metric merge -------------------------------------------------------------


def _merge_scalar_section(
    section: str,
    shards: Sequence[Dict[str, Any]],
    ghost: Dict[str, Any],
    peaks: Optional[Dict[str, float]] = None,
) -> Dict[str, float]:
    replicas = len(shards)
    keys: List[str] = []
    seen = set()
    for res in list(shards) + [ghost]:
        for ident in res["metrics"][section]:
            if ident not in seen:
                seen.add(ident)
                keys.append(ident)
    out: Dict[str, float] = {}
    for ident in sorted(keys):
        if section == "gauges" and _is_peak_gauge(ident):
            out[ident] = (peaks or {}).get(ident, 0.0)
            continue
        values = [res["metrics"][section].get(ident, 0.0) for res in shards]
        ghost_value = ghost["metrics"][section].get(ident, 0.0)
        out[ident] = sum(values) - (replicas - 1) * ghost_value
    return out


def _replay_peak_gauges(
    shards: Sequence[Dict[str, Any]],
    ghost: Dict[str, Any],
) -> Dict[str, float]:
    """Recompute peak gauges from the merged gauge-operation log.

    Same dedup discipline as the observation replay: shared-rank
    operations are validated identical across shards (and the ghost) and
    replayed once, owned-flow operations come from their owner, and the
    merged ``(ts, rank, idx)`` order is the order the reference mutated
    in. The running maximum of each source gauge's level is the
    reference's peak.
    """
    flow_ranks = set(shards[0]["flow_ranks"])

    def shared_ops(res):
        return [
            tuple(o) for o in res["gauge_ops"] if o[2] not in flow_ranks
        ]

    reference_shared = shared_ops(shards[0])
    for res in list(shards[1:]) + [ghost]:
        other = shared_ops(res)
        if other != reference_shared:
            label = "ghost" if res is ghost else f"shard {res['shard']}"
            raise MergeError(
                f"shared gauge operations diverge between shard 0 and "
                f"{label}: {_first_diff(reference_shared, other)}"
            )
    entries = list(reference_shared)
    for res in shards:
        owned = set(res["owned_flow_ranks"])
        entries.extend(
            tuple(o) for o in res["gauge_ops"] if o[2] in owned
        )
    entries.sort(key=lambda o: (o[1], o[2], o[3]))
    level: Dict[str, float] = {}
    peak: Dict[str, float] = {}
    for describe, _ts, _rank, _idx, op, amount in entries:
        value = amount if op == "set" else level.get(describe, 0.0) + amount
        level[describe] = value
        if value > peak.get(describe, 0.0):
            peak[describe] = value
    out: Dict[str, float] = {}
    for peak_name, source_name in PEAK_GAUGE_SOURCES.items():
        prefix = source_name + "{"
        for describe in level:
            if describe == source_name or describe.startswith(prefix):
                suffix = describe[len(source_name):]
                out[peak_name + suffix] = peak.get(describe, 0.0)
    return out


def _merge_histograms(
    shards: Sequence[Dict[str, Any]],
    ghost: Dict[str, Any],
) -> Dict[str, Dict[str, float]]:
    """Rebuild reference reservoirs from the merged observation log.

    Shared-rank observations are validated identical across shards (and
    the ghost) and replayed once; owned-flow observations come from
    their one owner. The replay feeds a fresh :class:`Histogram` in
    global ``(ts, rank, idx)`` order — the order the reference observed
    in — so decimation makes the same choices byte for byte.
    """
    flow_ranks = set(shards[0]["flow_ranks"])

    def shared_obs(res):
        return [
            tuple(o) for o in res["observations"] if o[2] not in flow_ranks
        ]

    reference_shared = shared_obs(shards[0])
    for res in list(shards[1:]) + [ghost]:
        other = shared_obs(res)
        if other != reference_shared:
            label = "ghost" if res is ghost else f"shard {res['shard']}"
            raise MergeError(
                f"shared histogram observations diverge between shard 0 "
                f"and {label}: {_first_diff(reference_shared, other)}"
            )
    entries = list(reference_shared)
    for res in shards:
        owned = set(res["owned_flow_ranks"])
        entries.extend(
            tuple(o) for o in res["observations"] if o[2] in owned
        )
    # Sort by (ts, rank, idx); the describe string rides along.
    entries.sort(key=lambda o: (o[1], o[2], o[3]))
    replay: Dict[str, Histogram] = {}
    for describe, _ts, _rank, _idx, value, max_samples in entries:
        hist = replay.get(describe)
        if hist is None:
            hist = Histogram(describe, max_samples=max_samples)
            replay[describe] = hist
        hist.observe(value)
    out: Dict[str, Dict[str, float]] = {}
    idents = set()
    for res in list(shards) + [ghost]:
        idents.update(res["metrics"]["histograms"])
    for ident in sorted(idents):
        hist = replay.get(ident)
        out[ident] = hist.summary() if hist is not None else {"count": 0.0}
    return out


def strip_non_identity(snapshot: Dict[str, Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Drop metric families excluded from the identity contract."""
    return {
        section: {
            ident: value
            for ident, value in entries.items()
            if not ident.startswith(NON_IDENTITY_PREFIXES)
        }
        for section, entries in snapshot.items()
    }


# -- top level ----------------------------------------------------------------


def merge_results(
    shards: Sequence[Dict[str, Any]],
    ghost: Dict[str, Any],
) -> Dict[str, Any]:
    """Merge N shard results + the ghost into one reference-equivalent run.

    Returns a dict with ``events``, ``records_emitted``, ``trace``
    (ring-tail :class:`TraceRecord` list), ``trace_digest``, ``metrics``
    (full merged snapshot), ``rng_draws``, and bookkeeping counts.
    """
    if not shards:
        raise MergeError("no shard results to merge")
    if not ghost.get("ghost"):
        raise MergeError("ghost result was not run in ghost mode")
    _validate_partition(list(shards) + [ghost])
    replicas = len(shards)

    _births, uid_maps = _merge_births(shards, ghost)
    # The ghost's births are all shared (validated above), so its map
    # falls out of the shared prefix of the merged order directly.
    flow_ranks = set(shards[0]["flow_ranks"])
    shared_positions = {
        (rank, idx): uid
        for uid, (_ts, rank, idx) in enumerate(_births, start=1)
        if rank not in flow_ranks
    }
    ghost_uid_map = {
        local: shared_positions[(rank, idx)]
        for local, (_ts, rank, idx) in enumerate(
            (tuple(b) for b in ghost["births"]), start=1
        )
    }

    rows = _merge_rows(shards, ghost, uid_maps, ghost_uid_map)
    records = rows_to_records(rows)
    maxlen = shards[0]["trace_maxlen"]
    ring_tail = records[-maxlen:] if maxlen else records

    events = (
        sum(res["events_executed"] for res in shards)
        - (replicas - 1) * ghost["events_executed"]
    )
    records_emitted = (
        sum(res["records_emitted"] for res in shards)
        - (replicas - 1) * ghost["records_emitted"]
    )
    if records_emitted != len(rows):
        raise MergeError(
            f"merged record count {len(rows)} != ghost-subtracted "
            f"records_emitted {records_emitted}"
        )

    peaks = _replay_peak_gauges(shards, ghost)
    metrics = {
        "counters": _merge_scalar_section("counters", shards, ghost),
        "gauges": _merge_scalar_section("gauges", shards, ghost, peaks),
        "histograms": _merge_histograms(shards, ghost),
    }

    return {
        "num_shards": replicas,
        "events": events,
        "records_emitted": records_emitted,
        "uids_allocated": len(_births),
        "trace": ring_tail,
        "trace_digest": trace_digest(ring_tail),
        "records": records,
        "metrics": metrics,
        "rng_draws": sum(res["rng_draws"] for res in shards)
        + ghost["rng_draws"],
        "flows_injected": sum(res["flows_injected"] for res in shards),
        "final_now": max(res["final_now"] for res in shards),
    }


def summary_results(
    shards: Sequence[Dict[str, Any]],
    ghost: Dict[str, Any],
) -> Dict[str, Any]:
    """Count-level merge for capture-off (throughput-bench) runs.

    Without captured rows, births, and operation logs there is nothing
    to reassemble byte-for-byte; the ghost-subtraction identities on the
    counts still hold and are what a scaling bench needs.
    """
    if not shards:
        raise MergeError("no shard results to merge")
    if not ghost.get("ghost"):
        raise MergeError("ghost result was not run in ghost mode")
    replicas = len(shards)
    return {
        "num_shards": replicas,
        "events": (
            sum(res["events_executed"] for res in shards)
            - (replicas - 1) * ghost["events_executed"]
        ),
        "records_emitted": (
            sum(res["records_emitted"] for res in shards)
            - (replicas - 1) * ghost["records_emitted"]
        ),
        "rng_draws": sum(res["rng_draws"] for res in shards)
        + ghost["rng_draws"],
        "flows_injected": sum(res["flows_injected"] for res in shards),
        "final_now": max(res["final_now"] for res in shards),
    }


def reference_result(sim: Any) -> Dict[str, Any]:
    """Snapshot a finished reference simulator for identity comparison."""
    ring = sim.tracer.tail()
    return {
        "events": sim.events_executed,
        "records_emitted": sim.tracer.records_emitted,
        "trace": ring,
        "trace_digest": trace_digest(ring),
        "metrics": sim.metrics.snapshot(),
    }


def identity_report(
    reference: Dict[str, Any], merged: Dict[str, Any]
) -> Dict[str, bool]:
    """Axis-by-axis identity verdicts, mirroring the fastpath A/B gate.

    Metrics are compared minus the ``shard.*`` / ``fastpath.*`` /
    ``observe.*`` families (per-shard bookkeeping by construction); the
    trace is compared byte-for-byte via canonical JSONL.
    """
    ref_trace = b"".join(
        (r.to_json() + "\n").encode() for r in reference["trace"]
    )
    merged_trace = b"".join(
        (r.to_json() + "\n").encode() for r in merged["trace"]
    )
    ref_metrics = json.dumps(
        strip_non_identity(reference["metrics"]), sort_keys=True
    )
    merged_metrics = json.dumps(
        strip_non_identity(merged["metrics"]), sort_keys=True
    )
    return {
        "events": reference["events"] == merged["events"],
        "records_emitted":
            reference["records_emitted"] == merged["records_emitted"],
        "trace": ref_trace == merged_trace,
        "trace_digest":
            reference["trace_digest"] == merged["trace_digest"],
        "metrics": ref_metrics == merged_metrics,
    }

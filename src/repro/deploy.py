"""One-call deployment of a RedPlane testbed.

Wires together the Appendix-D topology, programmable aggregation switches,
state-store servers (optionally chain-replicated), the shard map, and a
RedPlane-enabled application on each aggregation switch — the setup every
experiment in §7 starts from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.net import constants
from repro.net.routing import L3Switch
from repro.net.simulator import Simulator
from repro.net.topology import Testbed, build_testbed
from repro.switch.asic import SwitchASIC
from repro.core.app import InSwitchApp
from repro.core.engine import RedPlaneConfig, RedPlaneEngine
from repro.core.api import attach_netchain_store, attach_redplane
from repro.core.protocol import STORE_UDP_PORT
from repro.statestore.backend import StateStoreBackend
from repro.statestore.failover import MutableShardMap
from repro.statestore.netchain import (
    NETCHAIN_UDP_PORT,
    NetChainBackend,
    NetChainStoreBlock,
)
from repro.statestore.server import StateAllocator, StateStoreNode, build_chain
from repro.statestore.sharding import ShardAddress, ShardMap

#: Builds one application instance per switch (apps are stateful objects,
#: so each switch needs its own).
AppFactory = Callable[[], InSwitchApp]

#: Builds one storage backend per store node, keyed by the node's name.
#: ``None`` keeps the default in-memory backend.
BackendFactory = Callable[[str], StateStoreBackend]


@dataclass
class Deployment:
    """Everything an experiment needs handles to."""

    sim: Simulator
    bed: Testbed
    apps: Dict[str, InSwitchApp] = field(default_factory=dict)
    engines: Dict[str, RedPlaneEngine] = field(default_factory=dict)
    stores: List[StateStoreNode] = field(default_factory=list)
    shard_map: Optional[ShardMap] = None
    #: Store nodes grouped into replication chains, one list per shard.
    chains: List[List[StateStoreNode]] = field(default_factory=list)
    #: The in-switch store block when deployed via :func:`deploy_netchain`.
    netchain: Optional[NetChainStoreBlock] = None

    @property
    def switches(self) -> List[SwitchASIC]:
        return self.bed.aggs  # type: ignore[return-value]

    def engine_of(self, switch: SwitchASIC) -> RedPlaneEngine:
        return self.engines[switch.name]


def deploy(
    sim: Simulator,
    app_factory: AppFactory,
    num_shards: int = 1,
    chain_length: int = 3,
    config: Optional[RedPlaneConfig] = None,
    allocator: Optional[StateAllocator] = None,
    link_loss: float = 0.0,
    link_reorder: float = 0.0,
    lease_period_us: float = constants.LEASE_PERIOD_US,
    backend_factory: Optional[BackendFactory] = None,
) -> Deployment:
    """Build the testbed and attach a RedPlane-enabled app to each agg switch.

    ``num_shards`` and ``chain_length`` carve the three store servers into
    replication groups: the prototype's configuration is one shard with a
    chain of three (one server per rack); Fig 13 uses up to three
    single-server shards. ``num_shards * chain_length`` must not exceed
    the three store servers of the testbed.

    ``backend_factory(name)`` selects the storage backend of each store
    node (e.g. ``lambda name: WALBackend(f"{dir}/{name}")`` for durable
    crash recovery); by default every node keeps the in-memory backend.
    """
    if num_shards * chain_length > 3:
        raise ValueError(
            "the testbed has 3 store servers; "
            f"{num_shards} shards x {chain_length} chain nodes do not fit"
        )
    if config is not None:
        lease_period_us = config.lease_period_us

    def make_agg(sim_: Simulator, name: str, loopback_ip: int) -> SwitchASIC:
        return SwitchASIC(sim_, name, loopback_ip)

    def make_store(sim_: Simulator, name: str, ip: int) -> StateStoreNode:
        backend = backend_factory(name) if backend_factory is not None else None
        return StateStoreNode(
            sim_, name, ip, lease_period_us=lease_period_us, allocator=allocator,
            backend=backend,
        )

    bed = build_testbed(
        sim,
        agg_factory=make_agg,
        store_factory=make_store,
        link_loss=link_loss,
        link_reorder=link_reorder,
    )
    stores: List[StateStoreNode] = list(bed.store_servers)  # type: ignore[arg-type]

    heads: List[ShardAddress] = []
    chains: List[List[StateStoreNode]] = []
    for shard in range(num_shards):
        chain = stores[shard * chain_length : (shard + 1) * chain_length]
        build_chain(chain)
        chains.append(chain)
        heads.append(ShardAddress(ip=chain[0].ip, udp_port=STORE_UDP_PORT))
    shard_map = MutableShardMap(heads)

    deployment = Deployment(sim=sim, bed=bed, stores=stores, shard_map=shard_map)
    deployment.chains = chains
    for agg in bed.aggs:
        app = app_factory()
        engine = attach_redplane(agg, app, shard_map, config)  # type: ignore[arg-type]
        deployment.apps[agg.name] = app
        deployment.engines[agg.name] = engine
    return deployment


def deploy_netchain(
    sim: Simulator,
    app_factory: AppFactory,
    config: Optional[RedPlaneConfig] = None,
    allocator: Optional[StateAllocator] = None,
    link_loss: float = 0.0,
    link_reorder: float = 0.0,
    lease_period_us: float = constants.LEASE_PERIOD_US,
    store_size: int = 1024,
) -> Deployment:
    """Deploy with a NetChain-style *in-switch* store instead of servers.

    ``tor1`` becomes a programmable switch running
    :class:`~repro.statestore.netchain.NetChainStoreBlock`: the single
    shard's records live in its register arrays and every store request
    is answered from the pipeline — roughly half the server path's RTT,
    at the price of losing all state if that switch crashes (the
    fault-tolerance tradeoff of RedPlane §8 / the NetChain comparison).

    The ToR is addressed at its otherwise-unused in-rack IP, so no route
    changes are needed: the aggregation layer already sends the rack
    prefix down to it, and replies to the requesting switch's loopback
    ride the normal up-routes. The store servers of the testbed are
    built but left idle (``deployment.stores`` is empty).
    """
    if config is not None:
        lease_period_us = config.lease_period_us

    def make_agg(sim_: Simulator, name: str, loopback_ip: int) -> SwitchASIC:
        return SwitchASIC(sim_, name, loopback_ip)

    def make_tor(sim_: Simulator, name: str, ip: int) -> L3Switch:
        if name == "tor1":
            return SwitchASIC(sim_, name, ip)
        return L3Switch(sim_, name)

    bed = build_testbed(
        sim,
        agg_factory=make_agg,
        tor_factory=make_tor,
        link_loss=link_loss,
        link_reorder=link_reorder,
    )
    tor = bed.tors[0]
    assert isinstance(tor, SwitchASIC)
    backend = NetChainBackend(label=f"{tor.name}.netchain", size=store_size)
    block = attach_netchain_store(
        tor, backend=backend, lease_period_us=lease_period_us, allocator=allocator
    )
    shard_map = MutableShardMap(
        [ShardAddress(ip=tor.ip, udp_port=NETCHAIN_UDP_PORT)]
    )

    deployment = Deployment(
        sim=sim, bed=bed, stores=[], shard_map=shard_map, netchain=block
    )
    for agg in bed.aggs:
        app = app_factory()
        engine = attach_redplane(agg, app, shard_map, config)  # type: ignore[arg-type]
        deployment.apps[agg.name] = app
        deployment.engines[agg.name] = engine
    return deployment

"""One-call deployment of a RedPlane testbed.

Wires together the Appendix-D topology, programmable aggregation switches,
state-store servers (optionally chain-replicated), the shard map, and a
RedPlane-enabled application on each aggregation switch — the setup every
experiment in §7 starts from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.net import constants
from repro.net.simulator import Simulator
from repro.net.topology import Testbed, build_testbed
from repro.switch.asic import SwitchASIC
from repro.core.app import InSwitchApp
from repro.core.engine import RedPlaneConfig, RedPlaneEngine
from repro.core.api import attach_redplane
from repro.core.protocol import STORE_UDP_PORT
from repro.statestore.failover import MutableShardMap
from repro.statestore.server import StateAllocator, StateStoreNode, build_chain
from repro.statestore.sharding import ShardAddress, ShardMap

#: Builds one application instance per switch (apps are stateful objects,
#: so each switch needs its own).
AppFactory = Callable[[], InSwitchApp]


@dataclass
class Deployment:
    """Everything an experiment needs handles to."""

    sim: Simulator
    bed: Testbed
    apps: Dict[str, InSwitchApp] = field(default_factory=dict)
    engines: Dict[str, RedPlaneEngine] = field(default_factory=dict)
    stores: List[StateStoreNode] = field(default_factory=list)
    shard_map: Optional[ShardMap] = None
    #: Store nodes grouped into replication chains, one list per shard.
    chains: List[List[StateStoreNode]] = field(default_factory=list)

    @property
    def switches(self) -> List[SwitchASIC]:
        return self.bed.aggs  # type: ignore[return-value]

    def engine_of(self, switch: SwitchASIC) -> RedPlaneEngine:
        return self.engines[switch.name]


def deploy(
    sim: Simulator,
    app_factory: AppFactory,
    num_shards: int = 1,
    chain_length: int = 3,
    config: Optional[RedPlaneConfig] = None,
    allocator: Optional[StateAllocator] = None,
    link_loss: float = 0.0,
    link_reorder: float = 0.0,
    lease_period_us: float = constants.LEASE_PERIOD_US,
) -> Deployment:
    """Build the testbed and attach a RedPlane-enabled app to each agg switch.

    ``num_shards`` and ``chain_length`` carve the three store servers into
    replication groups: the prototype's configuration is one shard with a
    chain of three (one server per rack); Fig 13 uses up to three
    single-server shards. ``num_shards * chain_length`` must not exceed
    the three store servers of the testbed.
    """
    if num_shards * chain_length > 3:
        raise ValueError(
            "the testbed has 3 store servers; "
            f"{num_shards} shards x {chain_length} chain nodes do not fit"
        )
    if config is not None:
        lease_period_us = config.lease_period_us

    def make_agg(sim_: Simulator, name: str, loopback_ip: int) -> SwitchASIC:
        return SwitchASIC(sim_, name, loopback_ip)

    def make_store(sim_: Simulator, name: str, ip: int) -> StateStoreNode:
        return StateStoreNode(
            sim_, name, ip, lease_period_us=lease_period_us, allocator=allocator
        )

    bed = build_testbed(
        sim,
        agg_factory=make_agg,
        store_factory=make_store,
        link_loss=link_loss,
        link_reorder=link_reorder,
    )
    stores: List[StateStoreNode] = list(bed.store_servers)  # type: ignore[arg-type]

    heads: List[ShardAddress] = []
    chains: List[List[StateStoreNode]] = []
    for shard in range(num_shards):
        chain = stores[shard * chain_length : (shard + 1) * chain_length]
        build_chain(chain)
        chains.append(chain)
        heads.append(ShardAddress(ip=chain[0].ip, udp_port=STORE_UDP_PORT))
    shard_map = MutableShardMap(heads)

    deployment = Deployment(sim=sim, bed=bed, stores=stores, shard_map=shard_map)
    deployment.chains = chains
    for agg in bed.aggs:
        app = app_factory()
        engine = attach_redplane(agg, app, shard_map, config)  # type: ignore[arg-type]
        deployment.apps[agg.name] = app
        deployment.engines[agg.name] = engine
    return deployment

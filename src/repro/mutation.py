"""Guarded intentional bugs for mutation-testing the chaos fuzzer.

A fault-schedule fuzzer that never finds anything is indistinguishable
from one that cannot: its detection power must itself be tested. This
module holds a registry of *mutations* — named, intentionally-wrong
behaviours wired into protocol hot spots behind ``mutation_active``
guards. All mutations are off by default and the guard is a plain dict
lookup, so the unmutated fast path costs one hash probe.

The fuzzer's self-check (``repro.chaos.fuzz.mutation_self_check``, run
by CI) enables one mutation, fuzzes a bounded budget of schedules, and
requires a violation to be found *and* shrunk to a minimal reproducer;
with the mutation disabled, the same seeds must come up clean.

Mutations are process-global state. Always enable them through the
``seeded_bug`` context manager so a raising run cannot leak a mutation
into subsequent tests.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator

#: Registry of known mutations: name -> what the guarded wrong behaviour
#: does (and where it lives). Guard sites reference these names verbatim.
MUTATIONS: Dict[str, str] = {
    # statestore/server.py _apply(): the chain-replica stale-write guard
    # is skipped, so a late or duplicated REPL_WRITE_REQ overwrites newer
    # state — value regression, exactly the §5.2 sequencing bug class.
    "skip_store_dedup": (
        "replicas apply stale REPL_WRITE_REQs instead of rejecting them "
        "(statestore.server.StateStoreNode._apply)"
    ),
    # statestore/server.py reconfigure_chain(): the post-splice
    # re-propagation of in-flight writes is skipped, so writes that were
    # mid-chain when a node died never reach the new tail.
    "skip_chain_repair": (
        "chain splices skip re-propagating in-flight writes "
        "(statestore.server.StateStoreNode.reconfigure_chain)"
    ),
    # core/engine.py _reinject_piggyback(): the hold-nonce dedup is
    # bypassed, so a duplicated LEASE_NEW_ACK re-injects its held packet
    # and the application update is applied twice — a genuine engine bug
    # the fuzzer originally surfaced (duplicate-storm + forced lease
    # expiry), re-introducible here as its regression witness.
    "skip_hold_dedup": (
        "duplicated lease acks re-process their piggybacked packet "
        "(core.engine.RedPlaneEngine._reinject_piggyback)"
    ),
    # core/engine.py _handle_lease_new_ack(): the granted-seq guard is
    # bypassed, so a lease grant snapshotted before the switch's
    # in-flight writes landed regresses local state and the sequence
    # counter — the second engine bug the fuzzer originally surfaced.
    "skip_lease_install_guard": (
        "stale lease grants overwrite newer switch-local state "
        "(core.engine.RedPlaneEngine._handle_lease_new_ack)"
    ),
}

_active: Dict[str, bool] = {}


def mutation_active(name: str) -> bool:
    """The guard probe: is the named mutation currently enabled?"""
    return _active.get(name, False)


def enable(name: str) -> None:
    if name not in MUTATIONS:
        raise KeyError(
            f"unknown mutation {name!r}; known: {', '.join(sorted(MUTATIONS))}")
    _active[name] = True


def disable(name: str) -> None:
    _active.pop(name, None)


def disable_all() -> None:
    _active.clear()


@contextmanager
def seeded_bug(name: str) -> Iterator[None]:
    """Enable a mutation for the duration of a ``with`` block, leak-proof."""
    enable(name)
    try:
        yield
    finally:
        disable(name)

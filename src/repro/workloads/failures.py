"""Failure-scenario library.

Parameterized failure schedules used by tests, benchmarks, examples, and
the chaos engine (:mod:`repro.chaos`): the paper's single fail-stop
(§7.3), link flapping (the Fig 7a stale-state hazard), rolling failures,
correlated rack failures, and — beyond clean fail-stop — the gray-failure
primitives of `repro.net.links.LinkImpairment` (corruption, duplication,
jitter, asymmetric partition, degraded bandwidth), store crash+restart
and degradation, and switch-side lease-expiry races.

Each scenario schedules its events on a deployment and records what it
did, so an experiment can correlate measurements with injected faults.
Every fault application and clearance is also emitted as a
``fault.inject`` / ``fault.clear`` trace event at the simulated time it
fires, which is how chaos verdict reports reconstruct the timeline.

Determinism: a schedule holds no randomness of its own — fault times are
explicit, and any probabilistic behaviour (loss, corruption, jitter)
draws from the simulator's seeded RNG when packets traverse the impaired
element. Two runs with the same seed inject byte-identical fault streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.deploy import Deployment
from repro.net import constants
from repro.net.links import Link, LinkImpairment, Port
from repro.telemetry import trace as tt


class ScheduleError(ValueError):
    """A fault schedule is malformed: a fault lands at/after the campaign's
    ``duration_us`` (it would fire inside the drain window, or never), or a
    recovery/clear has no earlier matching fault to undo."""


#: Clearing fault kind -> the kinds it undoes. ``validate`` requires every
#: clearing fault to be preceded (strictly earlier) by a matching fault on
#: the same target.
_CLEAR_MATCHES: Dict[str, Tuple[str, ...]] = {
    "recover_node": ("fail_node",),
    "recover_link": ("fail_link",),
    "clear_link": ("impair_link",),
    "restore_store": ("degrade_store",),
    "restart_store": ("crash_store",),
}


@dataclass
class InjectedFault:
    time_us: float
    kind: str       # "fail_node" | "recover_node" | "fail_link" | ...
    target: str
    detail: str = ""


@dataclass
class FailureSchedule:
    """A list of injected faults, applied to a deployment's topology."""

    deployment: Deployment
    detect_delay_us: float = constants.FAILURE_DETECT_US
    #: Campaign duration, when known. A fault scheduled at or after it
    #: would fire in the drain window (or not at all) — rejected with a
    #: :class:`ScheduleError` at scheduling time instead of silently
    #: misbehaving.
    duration_us: Optional[float] = None
    log: List[InjectedFault] = field(default_factory=list)
    #: Saved (proc_delay_us, service_time_us) per degraded store, so
    #: restore_store_at can undo a degradation exactly.
    _store_baseline: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    # -- plumbing ----------------------------------------------------------

    def _inject(self, time_us: float, kind: str, target: str,
                fn: Callable[[], None], detail: str = "",
                clear: bool = False) -> None:
        """Schedule ``fn`` at ``time_us``, logging and tracing the fault."""
        if time_us < 0:
            raise ScheduleError(
                f"fault {kind!r} on {target!r} scheduled at negative time "
                f"t={time_us}"
            )
        if self.duration_us is not None and time_us >= self.duration_us:
            raise ScheduleError(
                f"fault {kind!r} on {target!r} scheduled at t={time_us}us, "
                f"at/after the campaign duration ({self.duration_us}us): it "
                f"would fire inside the drain window; move it earlier or "
                f"extend the campaign"
            )
        tracer = self.deployment.sim.tracer
        event_type = tt.FAULT_CLEAR if clear else tt.FAULT_INJECT

        def fire() -> None:
            tracer.emit(event_type, kind=kind, target=target, detail=detail)
            fp = self.deployment.sim.fastpath
            if fp is not None:
                fp.bus.publish("chaos")
            fn()

        self.deployment.sim.schedule_at(time_us, fire)
        self.log.append(InjectedFault(time_us, kind, target, detail))

    def link(self, index: int) -> Link:
        return self.deployment.bed.topology.links[index]

    def link_between(self, name_a: str, name_b: str) -> Link:
        """The (first) link whose endpoints are the two named nodes."""
        for link in self.deployment.bed.topology.links:
            ends = {link.a.node.name, link.b.node.name}
            if ends == {name_a, name_b}:
                return link
        raise KeyError(f"no link between {name_a!r} and {name_b!r}")

    @staticmethod
    def _direction_port(link: Link, from_node: Optional[str]) -> Optional[Port]:
        """The sending port of the ``from_node`` direction (None = both)."""
        if from_node is None:
            return None
        if link.a.node.name == from_node:
            return link.a
        if link.b.node.name == from_node:
            return link.b
        raise KeyError(f"{from_node!r} is not an endpoint of {link.name}")

    # -- node / link fail-stop primitives ----------------------------------

    def fail_switch_at(self, time_us: float, name: str) -> None:
        topo = self.deployment.bed.topology
        node = topo.nodes[name]
        self._inject(time_us, "fail_node", name,
                     lambda: topo.fail_node(node, self.detect_delay_us))

    def recover_switch_at(self, time_us: float, name: str) -> None:
        topo = self.deployment.bed.topology
        node = topo.nodes[name]
        self._inject(time_us, "recover_node", name,
                     lambda: topo.recover_node(node, self.detect_delay_us),
                     clear=True)

    def fail_store_at(self, time_us: float, index: int) -> None:
        store = self.deployment.stores[index]
        self._inject(time_us, "fail_node", store.name, store.fail)

    def recover_store_at(self, time_us: float, index: int) -> None:
        store = self.deployment.stores[index]
        self._inject(time_us, "recover_node", store.name, store.recover,
                     clear=True)

    def restart_store_at(self, time_us: float, index: int,
                         down_for_us: float) -> None:
        """Crash a store node and bring it back ``down_for_us`` later.

        The node's DRAM records survive the restart (a process crash, not
        a disk loss); whether its chain still references it is up to the
        failover coordinator running in the experiment.
        """
        self.fail_store_at(time_us, index)
        self.recover_store_at(time_us + down_for_us, index)

    def crash_store_at(self, time_us: float, index: int) -> None:
        """Hard-crash a store node: the process dies AND its in-memory
        record set is lost. What comes back on restart is whatever the
        node's storage backend can rebuild — everything for a WAL
        backend, nothing for a volatile one."""
        store = self.deployment.stores[index]
        self._inject(time_us, "crash_store", store.name, store.crash,
                     detail=f"backend={store.backend.name}")

    def recover_store_from_disk_at(self, time_us: float, index: int) -> None:
        """Restart a crashed store node, rebuilding records through
        ``backend.recover()`` (snapshot + WAL replay for durable
        backends) before it serves requests again."""
        store = self.deployment.stores[index]
        self._inject(time_us, "restart_store", store.name,
                     lambda: store.restart(),
                     detail=f"backend={store.backend.name}", clear=True)

    def fail_link_at(self, time_us: float, link_index: int) -> None:
        topo = self.deployment.bed.topology
        link = self.link(link_index)
        self._inject(time_us, "fail_link", link.name,
                     lambda: topo.fail_link(link, self.detect_delay_us))

    def recover_link_at(self, time_us: float, link_index: int) -> None:
        topo = self.deployment.bed.topology
        link = self.link(link_index)
        self._inject(time_us, "recover_link", link.name,
                     lambda: topo.recover_link(link, self.detect_delay_us),
                     clear=True)

    # -- gray-failure primitives -------------------------------------------

    def impair_link_at(self, time_us: float, link: Link,
                       impairment: LinkImpairment,
                       from_node: Optional[str] = None) -> None:
        """Install a gray-failure impairment at ``time_us``.

        ``from_node`` names the sending side of the affected direction;
        ``None`` impairs both directions. Routing beliefs are NOT updated:
        gray failures are exactly the faults detection misses.
        """
        port = self._direction_port(link, from_node)
        detail = impairment.describe() + (f" from={from_node}" if from_node else "")
        self._inject(time_us, "impair_link", link.name,
                     lambda: link.impair(impairment, port), detail=detail)

    def clear_link_at(self, time_us: float, link: Link,
                      from_node: Optional[str] = None) -> None:
        port = self._direction_port(link, from_node)
        self._inject(time_us, "clear_link", link.name,
                     lambda: link.clear_impairments(port), clear=True)

    def block_direction_at(self, time_us: float, link: Link,
                           from_node: str) -> None:
        """Asymmetric partition: one-way blackhole starting at ``time_us``."""
        self.impair_link_at(time_us, link, LinkImpairment(blocked=True),
                            from_node=from_node)

    def degrade_store_at(self, time_us: float, index: int,
                         proc_delay_us: Optional[float] = None,
                         service_time_us: Optional[float] = None) -> None:
        """Gray store: inflate a node's processing/service time."""
        store = self.deployment.stores[index]

        def apply() -> None:
            self._store_baseline.setdefault(
                store.name, (store.proc_delay_us, store.service_time_us))
            if proc_delay_us is not None:
                store.proc_delay_us = proc_delay_us
            if service_time_us is not None:
                store.service_time_us = service_time_us

        detail = (f"proc_delay_us={proc_delay_us} "
                  f"service_time_us={service_time_us}")
        self._inject(time_us, "degrade_store", store.name, apply, detail=detail)

    def restore_store_at(self, time_us: float, index: int) -> None:
        store = self.deployment.stores[index]

        def restore() -> None:
            baseline = self._store_baseline.pop(store.name, None)
            if baseline is not None:
                store.proc_delay_us, store.service_time_us = baseline

        self._inject(time_us, "restore_store", store.name, restore, clear=True)

    def expire_leases_at(self, time_us: float,
                         switch: Optional[str] = None) -> None:
        """Force switch-side lease expiry (the lease-race fault model)."""
        engines = self.deployment.engines

        def expire() -> None:
            for name, engine in engines.items():
                if switch is None or name == switch:
                    engine.expire_lease_now()

        self._inject(time_us, "expire_leases", switch or "all-switches", expire)

    # -- canned scenarios -----------------------------------------------------

    def single_failover(self, fail_at_us: float,
                        recover_at_us: Optional[float] = None,
                        switch: str = "agg1") -> "FailureSchedule":
        """The §7.3 scenario: one aggregation switch fails (and recovers)."""
        self.fail_switch_at(fail_at_us, switch)
        if recover_at_us is not None:
            self.recover_switch_at(recover_at_us, switch)
        return self

    def flapping_link(self, first_fail_us: float, period_us: float,
                      flaps: int, link_index: int = 0) -> "FailureSchedule":
        """A link that fails and recovers repeatedly (Fig 7a's hazard:
        a switch that keeps its state across connectivity loss)."""
        for i in range(flaps):
            down_at = first_fail_us + i * period_us
            self.fail_link_at(down_at, link_index)
            self.recover_link_at(down_at + period_us / 2, link_index)
        return self

    def gray_link(self, start_us: float, duration_us: float, link: Link,
                  corrupt_rate: float = 0.02, drop_rate: float = 0.0,
                  bandwidth_scale: float = 1.0,
                  jitter_us: float = 0.0,
                  from_node: Optional[str] = None) -> "FailureSchedule":
        """LinkGuardian's hard case: a link that corrupts instead of dying,
        so routing never reacts and retransmission has to carry the load."""
        impairment = LinkImpairment(
            corrupt_rate=corrupt_rate, drop_rate=drop_rate,
            bandwidth_scale=bandwidth_scale, jitter_us=jitter_us,
        )
        self.impair_link_at(start_us, link, impairment, from_node=from_node)
        self.clear_link_at(start_us + duration_us, link, from_node=from_node)
        return self

    def rolling_switch_failures(self, start_us: float, gap_us: float
                                ) -> "FailureSchedule":
        """Fail each aggregation switch in turn, recovering the previous
        one first — state migrates around the cluster."""
        aggs = [a.name for a in self.deployment.bed.aggs]
        t = start_us
        previous: Optional[str] = None
        for name in aggs:
            if previous is not None:
                self.recover_switch_at(t - gap_us / 2, previous)
            self.fail_switch_at(t, name)
            previous = name
            t += gap_us
        if previous is not None:
            self.recover_switch_at(t, previous)
        return self

    def rack_failure(self, time_us: float, rack: int) -> "FailureSchedule":
        """Correlated failure: a rack's ToR and its store server die
        together (fiber cut / PDU failure)."""
        bed = self.deployment.bed
        tor = bed.tors[rack - 1]
        topo = bed.topology
        self._inject(time_us, "fail_node", tor.name,
                     lambda: topo.fail_node(tor, self.detect_delay_us))
        for index, store in enumerate(self.deployment.stores):
            if store.name == f"st{rack}":
                self.fail_store_at(time_us, index)
        return self

    def rack_recovery(self, time_us: float, rack: int) -> "FailureSchedule":
        """Bring a failed rack's ToR and store server back."""
        bed = self.deployment.bed
        tor = bed.tors[rack - 1]
        topo = bed.topology
        self._inject(time_us, "recover_node", tor.name,
                     lambda: topo.recover_node(tor, self.detect_delay_us),
                     clear=True)
        for index, store in enumerate(self.deployment.stores):
            if store.name == f"st{rack}":
                self.recover_store_at(time_us, index)
        return self

    # -- validation -----------------------------------------------------------

    def validate(self) -> None:
        """Reject recover-before-fail orderings.

        Every clearing fault (recover/clear/restore/restart) must be
        preceded — strictly earlier on the schedule's timeline — by a
        matching fault on the same target; otherwise the recovery is a
        no-op at best and a double-recovery hazard at worst. Raises
        :class:`ScheduleError` naming the offending fault.
        """
        ordered = sorted(self.log, key=lambda f: f.time_us)
        for i, fault in enumerate(ordered):
            matches = _CLEAR_MATCHES.get(fault.kind)
            if matches is None:
                continue
            if not any(prior.kind in matches and prior.target == fault.target
                       and prior.time_us < fault.time_us
                       for prior in ordered[:i]):
                raise ScheduleError(
                    f"{fault.kind!r} on {fault.target!r} at t={fault.time_us}us "
                    f"has no earlier matching {'/'.join(matches)} fault to "
                    f"undo: recover-before-fail ordering"
                )

    def active_at(self, t_us: float) -> List[InjectedFault]:
        """The injected faults still in effect at simulated time ``t_us``.

        A fault is active once its injection time has passed and no
        later matching clear (same target, a kind ``_CLEAR_MATCHES``
        maps onto it) has fired by ``t_us``. Pure function of the
        schedule — the observability heartbeat reports its length as
        ``faults_active``, so it must never read live topology state.
        """
        active: List[InjectedFault] = []
        for fault in sorted(self.log, key=lambda f: (f.time_us, f.kind,
                                                     f.target)):
            if fault.time_us > t_us:
                break
            matches = _CLEAR_MATCHES.get(fault.kind)
            if matches is None:
                active.append(fault)
                continue
            for i in range(len(active) - 1, -1, -1):
                prior = active[i]
                if prior.kind in matches and prior.target == fault.target:
                    del active[i]
                    break
        return active

    def stores_down_at(self, t_us: float) -> int:
        """How many store nodes are hard-crashed (lost DRAM, backend not
        yet recovered) at ``t_us`` — the WAL-stall detector's input."""
        return sum(1 for f in self.active_at(t_us)
                   if f.kind == "crash_store")

    # -- reporting ------------------------------------------------------------

    def summary(self) -> List[Tuple[float, str, str]]:
        return [(f.time_us, f.kind, f.target) for f in
                sorted(self.log, key=lambda f: f.time_us)]

    def detailed_summary(self) -> List[Dict[str, object]]:
        """Machine-readable fault list for chaos verdict reports."""
        return [
            {"time_us": f.time_us, "kind": f.kind, "target": f.target,
             "detail": f.detail}
            for f in sorted(self.log, key=lambda f: (f.time_us, f.kind, f.target))
        ]


# -- serializable fault grammar ------------------------------------------------

#: FaultSpec kind -> the FailureSchedule primitive it dispatches to, plus
#: the parameter names it accepts. This is the fuzzer's (and the regression
#: replayer's) schedule grammar: a schedule is a sorted tuple of FaultSpecs,
#: each of which round-trips through JSON byte-identically.
FAULT_GRAMMAR: Dict[str, Tuple[str, ...]] = {
    "fail_switch": ("switch",),
    "recover_switch": ("switch",),
    "fail_store": ("index",),
    "recover_store": ("index",),
    "crash_store": ("index",),
    "recover_store_from_disk": ("index",),
    "fail_link": ("link",),
    "recover_link": ("link",),
    "impair_link": ("link", "corrupt_rate", "drop_rate", "duplicate_rate",
                    "jitter_us", "bandwidth_scale", "blocked", "from_node"),
    "clear_link": ("link", "from_node"),
    "degrade_store": ("index", "proc_delay_us", "service_time_us"),
    "restore_store": ("index",),
    "expire_leases": ("switch",),
}

#: FaultSpec kinds that clear an earlier fault -> the spec kinds they undo.
#: This is the grammar-level mirror of ``_CLEAR_MATCHES`` (which works on
#: the injected-fault kinds); the shrinker uses it to drop fault/clear
#: pairs together.
SPEC_CLEAR_MATCHES: Dict[str, Tuple[str, ...]] = {
    "recover_switch": ("fail_switch",),
    "recover_store": ("fail_store",),
    "recover_store_from_disk": ("crash_store",),
    "recover_link": ("fail_link",),
    "clear_link": ("impair_link",),
    "restore_store": ("degrade_store",),
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault of the serializable schedule grammar.

    ``kind`` names a ``FAULT_GRAMMAR`` entry; ``params`` holds only that
    entry's JSON-scalar parameters. ``apply_to`` dispatches to the
    corresponding :class:`FailureSchedule` primitive, so a tuple of specs
    IS a schedule — buildable, serializable, and replayable.
    """

    kind: str
    time_us: float
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        allowed = FAULT_GRAMMAR.get(self.kind)
        if allowed is None:
            raise ScheduleError(f"unknown fault kind {self.kind!r}")
        for name, _ in self.params:
            if name not in allowed:
                raise ScheduleError(
                    f"fault kind {self.kind!r} takes no parameter {name!r} "
                    f"(allowed: {', '.join(allowed)})"
                )

    @property
    def param_dict(self) -> Dict[str, object]:
        return dict(self.params)

    #: The same-target pairing key the shrinker and validator use.
    def target_key(self) -> Tuple[str, object]:
        p = self.param_dict
        if "index" in FAULT_GRAMMAR[self.kind]:
            return ("store", p.get("index"))
        if "link" in FAULT_GRAMMAR[self.kind]:
            return ("link", p.get("link"))
        return ("switch", p.get("switch"))

    def describe(self) -> str:
        inner = " ".join(f"{k}={v}" for k, v in self.params)
        return f"t={self.time_us:.0f}us {self.kind}" + (f" {inner}" if inner else "")

    # -- construction / serialization --------------------------------------

    @classmethod
    def make(cls, kind: str, time_us: float, **params: object) -> "FaultSpec":
        """Build a spec with params canonically ordered by the grammar."""
        allowed = FAULT_GRAMMAR.get(kind)
        if allowed is None:
            raise ScheduleError(f"unknown fault kind {kind!r}")
        ordered = tuple((name, params[name]) for name in allowed
                        if name in params)
        extra = set(params) - set(allowed)
        if extra:
            raise ScheduleError(
                f"fault kind {kind!r} takes no parameter "
                f"{', '.join(sorted(map(repr, extra)))}"
            )
        return cls(kind=kind, time_us=float(time_us), params=ordered)

    def to_dict(self) -> Dict[str, object]:
        d: Dict[str, object] = {"kind": self.kind, "time_us": self.time_us}
        d.update(self.params)
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "FaultSpec":
        params = {k: v for k, v in d.items() if k not in ("kind", "time_us")}
        return cls.make(str(d["kind"]), float(d["time_us"]), **params)  # type: ignore[arg-type]

    #: Deterministic schedule ordering: time, then kind, then params.
    def sort_key(self) -> Tuple[object, ...]:
        return (self.time_us, self.kind, tuple(
            (k, repr(v)) for k, v in self.params))

    # -- replay -------------------------------------------------------------

    def apply_to(self, schedule: FailureSchedule) -> None:
        """Schedule this fault on a live :class:`FailureSchedule`."""
        p = self.param_dict
        t = self.time_us
        kind = self.kind
        if kind == "fail_switch":
            schedule.fail_switch_at(t, str(p["switch"]))
        elif kind == "recover_switch":
            schedule.recover_switch_at(t, str(p["switch"]))
        elif kind == "fail_store":
            schedule.fail_store_at(t, int(p["index"]))  # type: ignore[arg-type]
        elif kind == "recover_store":
            schedule.recover_store_at(t, int(p["index"]))  # type: ignore[arg-type]
        elif kind == "crash_store":
            schedule.crash_store_at(t, int(p["index"]))  # type: ignore[arg-type]
        elif kind == "recover_store_from_disk":
            schedule.recover_store_from_disk_at(t, int(p["index"]))  # type: ignore[arg-type]
        elif kind == "fail_link":
            schedule.fail_link_at(t, int(p["link"]))  # type: ignore[arg-type]
        elif kind == "recover_link":
            schedule.recover_link_at(t, int(p["link"]))  # type: ignore[arg-type]
        elif kind == "impair_link":
            impairment = LinkImpairment(
                corrupt_rate=float(p.get("corrupt_rate", 0.0)),  # type: ignore[arg-type]
                drop_rate=float(p.get("drop_rate", 0.0)),  # type: ignore[arg-type]
                duplicate_rate=float(p.get("duplicate_rate", 0.0)),  # type: ignore[arg-type]
                jitter_us=float(p.get("jitter_us", 0.0)),  # type: ignore[arg-type]
                bandwidth_scale=float(p.get("bandwidth_scale", 1.0)),  # type: ignore[arg-type]
                blocked=bool(p.get("blocked", False)),
            )
            schedule.impair_link_at(
                t, schedule.link(int(p["link"])), impairment,  # type: ignore[arg-type]
                from_node=p.get("from_node"))  # type: ignore[arg-type]
        elif kind == "clear_link":
            schedule.clear_link_at(
                t, schedule.link(int(p["link"])),  # type: ignore[arg-type]
                from_node=p.get("from_node"))  # type: ignore[arg-type]
        elif kind == "degrade_store":
            schedule.degrade_store_at(
                t, int(p["index"]),  # type: ignore[arg-type]
                proc_delay_us=p.get("proc_delay_us"),  # type: ignore[arg-type]
                service_time_us=p.get("service_time_us"))  # type: ignore[arg-type]
        elif kind == "restore_store":
            schedule.restore_store_at(t, int(p["index"]))  # type: ignore[arg-type]
        elif kind == "expire_leases":
            schedule.expire_leases_at(t, switch=p.get("switch"))  # type: ignore[arg-type]
        else:  # pragma: no cover - __post_init__ rejects unknown kinds
            raise ScheduleError(f"unknown fault kind {kind!r}")


def apply_specs(schedule: FailureSchedule,
                specs: Tuple[FaultSpec, ...]) -> None:
    """Apply a spec tuple to a live schedule in deterministic order."""
    for spec in sorted(specs, key=FaultSpec.sort_key):
        spec.apply_to(schedule)

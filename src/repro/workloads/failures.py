"""Failure-scenario library.

Parameterized failure schedules used by tests, benchmarks, and examples:
the paper's single fail-stop (§7.3), link flapping (the Fig 7a stale-state
hazard), rolling failures, and correlated rack failures. Each scenario
schedules its events on a deployment and records what it did, so an
experiment can correlate measurements with injected faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.deploy import Deployment
from repro.net import constants


@dataclass
class InjectedFault:
    time_us: float
    kind: str       # "fail_node" | "recover_node" | "fail_link" | "recover_link"
    target: str


@dataclass
class FailureSchedule:
    """A list of injected faults, applied to a deployment's topology."""

    deployment: Deployment
    detect_delay_us: float = constants.FAILURE_DETECT_US
    log: List[InjectedFault] = field(default_factory=list)

    # -- primitives --------------------------------------------------------

    def fail_switch_at(self, time_us: float, name: str) -> None:
        node = self.deployment.bed.topology.nodes[name]
        self.deployment.sim.schedule_at(
            time_us, self.deployment.bed.topology.fail_node, node,
            self.detect_delay_us,
        )
        self.log.append(InjectedFault(time_us, "fail_node", name))

    def recover_switch_at(self, time_us: float, name: str) -> None:
        node = self.deployment.bed.topology.nodes[name]
        self.deployment.sim.schedule_at(
            time_us, self.deployment.bed.topology.recover_node, node,
            self.detect_delay_us,
        )
        self.log.append(InjectedFault(time_us, "recover_node", name))

    def fail_store_at(self, time_us: float, index: int) -> None:
        store = self.deployment.stores[index]
        self.deployment.sim.schedule_at(time_us, store.fail)
        self.log.append(InjectedFault(time_us, "fail_node", store.name))

    # -- canned scenarios -----------------------------------------------------

    def single_failover(self, fail_at_us: float,
                        recover_at_us: Optional[float] = None,
                        switch: str = "agg1") -> "FailureSchedule":
        """The §7.3 scenario: one aggregation switch fails (and recovers)."""
        self.fail_switch_at(fail_at_us, switch)
        if recover_at_us is not None:
            self.recover_switch_at(recover_at_us, switch)
        return self

    def flapping_link(self, first_fail_us: float, period_us: float,
                      flaps: int, link_index: int = 0) -> "FailureSchedule":
        """A link that fails and recovers repeatedly (Fig 7a's hazard:
        a switch that keeps its state across connectivity loss)."""
        topo = self.deployment.bed.topology
        link = topo.links[link_index]
        for i in range(flaps):
            down_at = first_fail_us + i * period_us
            up_at = down_at + period_us / 2
            self.deployment.sim.schedule_at(
                down_at, topo.fail_link, link, self.detect_delay_us)
            self.deployment.sim.schedule_at(
                up_at, topo.recover_link, link, self.detect_delay_us)
            self.log.append(InjectedFault(down_at, "fail_link", link.name))
            self.log.append(InjectedFault(up_at, "recover_link", link.name))
        return self

    def rolling_switch_failures(self, start_us: float, gap_us: float
                                ) -> "FailureSchedule":
        """Fail each aggregation switch in turn, recovering the previous
        one first — state migrates around the cluster."""
        aggs = [a.name for a in self.deployment.bed.aggs]
        t = start_us
        previous: Optional[str] = None
        for name in aggs:
            if previous is not None:
                self.recover_switch_at(t - gap_us / 2, previous)
            self.fail_switch_at(t, name)
            previous = name
            t += gap_us
        if previous is not None:
            self.recover_switch_at(t, previous)
        return self

    def rack_failure(self, time_us: float, rack: int) -> "FailureSchedule":
        """Correlated failure: a rack's ToR and its store server die
        together (fiber cut / PDU failure)."""
        bed = self.deployment.bed
        tor = bed.tors[rack - 1]
        self.deployment.sim.schedule_at(
            time_us, bed.topology.fail_node, tor, self.detect_delay_us)
        self.log.append(InjectedFault(time_us, "fail_node", tor.name))
        for store in self.deployment.stores:
            if store.name == f"st{rack}":
                self.deployment.sim.schedule_at(time_us, store.fail)
                self.log.append(InjectedFault(time_us, "fail_node", store.name))
        return self

    # -- reporting ------------------------------------------------------------

    def summary(self) -> List[Tuple[float, str, str]]:
        return [(f.time_us, f.kind, f.target) for f in
                sorted(self.log, key=lambda f: f.time_us)]

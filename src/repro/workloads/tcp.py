"""Simplified TCP endpoints for the failover experiment (Fig 14).

An iperf-like bulk transfer with the pieces that matter for failure
recovery: slow start, AIMD congestion avoidance, duplicate-ACK fast
retransmit, and exponential-backoff retransmission timeouts. When a switch
on the path fails, segments black-hole until routing reroutes *and*
RedPlane migrates the NAT state; the sender sits in RTO backoff and the
goodput timeline shows exactly the outage-and-recovery shape of Fig 14.

Segments are macro-segments (configurable size) so that a multi-second
100 Gbps transfer stays within a tractable event count; goodput is
reported in Gbit/s per sampling bucket.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net import constants
from repro.net.hosts import Host
from repro.net.packet import Packet, TCP_ACK, TCP_SYN
from repro.net.simulator import Simulator
from typing import Optional

#: Default macro-segment payload (bytes). 128 KiB keeps a 100 Gbps flow
#: near ~100k events/simulated-second.
DEFAULT_SEGMENT_BYTES = 128 * 1024

#: Initial/minimum retransmission timeout (us) — Linux-like 200 ms floor.
RTO_MIN_US = 200_000.0
RTO_MAX_US = 2_000_000.0


class TcpReceiver(Host):
    """Cumulative-ACK receiver.

    Sequence and acknowledgment numbers are in *segments*, not bytes, so
    that multi-gigabyte macro-segment transfers never wrap the 32-bit wire
    fields (a real stack wraps modulo 2^32; segment numbering sidesteps
    the modular arithmetic without changing the dynamics).
    """

    def __init__(self, sim: Simulator, name: str, ip: int, port: int = 5201) -> None:
        super().__init__(sim, name, ip)
        self.port = port
        self.expected_seq = 0           # next expected segment number
        self.bytes_received = 0
        self.out_of_order: Dict[int, int] = {}
        #: The established connection's remote (ip, port); segments from
        #: any other 4-tuple belong to no connection and are ignored (a
        #: real stack would answer them with RST).
        self.peer: Optional[tuple] = None
        self.rejected_foreign = 0
        self.bind(port, self._on_segment)

    def _on_segment(self, pkt: Packet) -> None:
        src = (pkt.ip.src, pkt.l4.sport)
        if pkt.l4.has(TCP_SYN):
            # Connection establishment (or re-establishment): lock on.
            self.peer = src
            self.expected_seq = 0
            self.bytes_received = 0
            self.out_of_order.clear()
            synack = Packet.tcp(self.ip, pkt.ip.src, self.port, pkt.l4.sport,
                                seq=0, ack=0, flags=TCP_SYN | TCP_ACK)
            self.send(synack)
            return
        if self.peer is None or src != self.peer:
            self.rejected_foreign += 1
            return
        seg_len = len(pkt.payload)
        if pkt.l4.seq == self.expected_seq:
            self.expected_seq += 1
            self.bytes_received += seg_len
            # Absorb any buffered in-order continuation.
            while self.expected_seq in self.out_of_order:
                length = self.out_of_order.pop(self.expected_seq)
                self.expected_seq += 1
                self.bytes_received += length
        elif pkt.l4.seq > self.expected_seq:
            self.out_of_order[pkt.l4.seq] = seg_len
        ack = Packet.tcp(
            self.ip, pkt.ip.src, self.port, pkt.l4.sport,
            seq=0, ack=self.expected_seq, flags=TCP_ACK,
        )
        self.send(ack)


class TcpSender(Host):
    """AIMD bulk sender with fast retransmit and RTO backoff."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        ip: int,
        dst_ip: int,
        dst_port: int = 5201,
        sport: int = 40001,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        goodput_bucket_us: float = 100_000.0,
        max_cwnd: float = 128.0,
    ) -> None:
        super().__init__(sim, name, ip)
        self.dst_ip = dst_ip
        self.dst_port = dst_port
        self.sport = sport
        self.segment_bytes = segment_bytes
        self.goodput_bucket_us = goodput_bucket_us
        #: Receive-window equivalent: caps the congestion window, like the
        #: receiver buffer does for a real iperf flow.
        self.max_cwnd = max_cwnd
        self.bind(sport, self._on_ack)

        self.cwnd = 1.0                 # in segments
        self.ssthresh = 64.0
        self.established = False
        self.next_seq = 0               # next new segment number to send
        self.acked = 0                  # highest cumulative ack (segments)
        self.inflight: Dict[int, float] = {}  # seq -> send time
        self.dup_acks = 0
        self.rto_us = RTO_MIN_US
        self._rto_event = None
        self.running = False
        self.retransmits = 0
        self.timeouts = 0
        #: bucket start time -> bytes acked in that bucket
        self.goodput_buckets: Dict[int, int] = {}

    # -- control -------------------------------------------------------------

    def start(self) -> None:
        """Open the connection: SYN handshake, then bulk transfer."""
        self.running = True
        self.established = False
        self._send_syn()

    def _send_syn(self) -> None:
        if not self.running or self.established:
            return
        syn = Packet.tcp(self.ip, self.dst_ip, self.sport, self.dst_port,
                         seq=0, flags=TCP_SYN)
        self.send(syn)
        # Retry establishment like a real stack (SYN timer).
        self.sim.schedule(RTO_MIN_US, self._send_syn)

    def stop(self) -> None:
        self.running = False
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    # -- sending -------------------------------------------------------------

    def _fill_window(self) -> None:
        if not self.running:
            return
        while self.next_seq - self.acked < int(self.cwnd):
            self._transmit(self.next_seq)
            self.next_seq += 1

    def _transmit(self, seq: int) -> None:
        pkt = Packet.tcp(
            self.ip, self.dst_ip, self.sport, self.dst_port,
            seq=seq, flags=TCP_ACK, payload=b"\x00" * self.segment_bytes,
        )
        self.inflight[seq] = self.sim.now
        self.send(pkt)
        self._arm_rto()

    def _arm_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
        self._rto_event = self.sim.schedule(self.rto_us, self._on_rto)

    # -- receiving acks --------------------------------------------------------

    def _on_ack(self, pkt: Packet) -> None:
        if not self.running:
            return
        if pkt.l4.has(TCP_SYN):
            # SYN-ACK: the connection is up; start filling the window.
            if not self.established:
                self.established = True
                self._fill_window()
            return
        ack = pkt.l4.ack
        if ack > self.acked:
            newly = (ack - self.acked) * self.segment_bytes
            self._credit_goodput(newly)
            self.acked = ack
            self.dup_acks = 0
            self.rto_us = RTO_MIN_US
            for seq in [s for s in self.inflight if s < ack]:
                del self.inflight[seq]
            # Congestion control: slow start then AIMD, window-capped.
            if self.cwnd < self.ssthresh:
                self.cwnd += 1.0
            else:
                self.cwnd += 1.0 / self.cwnd
            self.cwnd = min(self.cwnd, self.max_cwnd)
            if self.inflight:
                self._arm_rto()
            elif self._rto_event is not None:
                self._rto_event.cancel()
                self._rto_event = None
            self._fill_window()
        else:
            self.dup_acks += 1
            if self.dup_acks == 3:
                # Fast retransmit + multiplicative decrease.
                self.ssthresh = max(2.0, self.cwnd / 2.0)
                self.cwnd = self.ssthresh
                self.retransmits += 1
                self._transmit(self.acked)

    def _on_rto(self) -> None:
        self._rto_event = None
        if not self.running or not self.inflight and self.next_seq == self.acked:
            return
        self.timeouts += 1
        self.ssthresh = max(2.0, self.cwnd / 2.0)
        self.cwnd = 1.0
        self.rto_us = min(self.rto_us * 2.0, RTO_MAX_US)
        self.dup_acks = 0
        # Go-back-N from the last cumulative ack.
        self.inflight.clear()
        self.next_seq = self.acked
        self._fill_window()

    # -- goodput accounting ------------------------------------------------------

    def _credit_goodput(self, nbytes: int) -> None:
        bucket = int(self.sim.now // self.goodput_bucket_us)
        self.goodput_buckets[bucket] = self.goodput_buckets.get(bucket, 0) + nbytes

    def goodput_series_gbps(self, until_us: float) -> List[Tuple[float, float]]:
        """(time_s, goodput_gbps) per bucket from 0 to ``until_us``."""
        out = []
        buckets = int(until_us // self.goodput_bucket_us)
        for bucket in range(buckets):
            nbytes = self.goodput_buckets.get(bucket, 0)
            gbps = nbytes * 8 / (self.goodput_bucket_us * 1000.0)
            out.append((bucket * self.goodput_bucket_us / 1e6, gbps))
        return out

"""Workload generation: synthetic traces and TCP endpoints."""

from repro.workloads.failures import FailureSchedule, InjectedFault
from repro.workloads.harness import EchoResponder, RttProbe
from repro.workloads.tcp import TcpReceiver, TcpSender
from repro.workloads.trace_io import load_trace, save_trace
from repro.workloads.traces import (
    SIZE_BUCKETS,
    TraceEvent,
    epc_trace,
    five_tuple_trace,
    kv_trace,
    packet_size,
    replay,
    vlan_trace,
)

__all__ = [
    "FailureSchedule",
    "InjectedFault",
    "EchoResponder",
    "RttProbe",
    "TcpReceiver",
    "TcpSender",
    "load_trace",
    "save_trace",
    "SIZE_BUCKETS",
    "TraceEvent",
    "epc_trace",
    "five_tuple_trace",
    "kv_trace",
    "packet_size",
    "replay",
    "vlan_trace",
]

"""Latency measurement harness for the Fig 8 / Fig 9 experiments.

The paper measures per-packet processing latency by having each
application "send packets back to a sender node and track the RTT of each
packet" (§7.1). Here: an :class:`EchoResponder` on the far host reflects
every packet (headers swapped), and an :class:`RttProbe` on the near host
replays a trace and matches reflections by the IP identification field
(which doubles as the trace id throughout the reproduction).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.hosts import Host
from repro.net.packet import Packet, TCPHeader, UDPHeader
from repro.net.simulator import Simulator
from repro.workloads.traces import TraceEvent


class EchoResponder:
    """Reflects packets back to their (possibly translated) source."""

    def __init__(self, host: Host, bind_port: Optional[int] = None) -> None:
        self.host = host
        self.reflected = 0
        if bind_port is not None:
            host.bind(bind_port, self._reflect)
        else:
            host.default_handler = self._reflect

    def _reflect(self, pkt: Packet) -> None:
        echo = pkt.copy()
        echo.ip.src, echo.ip.dst = pkt.ip.dst, pkt.ip.src
        if isinstance(echo.l4, (UDPHeader, TCPHeader)):
            echo.l4.sport, echo.l4.dport = pkt.l4.dport, pkt.l4.sport
        echo.ip.ttl = 64
        self.reflected += 1
        self.host.send(echo)


class RttProbe:
    """Replays a trace from a host and collects per-packet RTTs (us)."""

    def __init__(self, host: Host) -> None:
        self.host = host
        self.sim: Simulator = host.sim
        self._sent_at: Dict[int, float] = {}
        self.rtts_us: List[float] = []
        self._h_rtt = self.sim.metrics.histogram(
            "probe.rtt_us", host=host.name
        )
        self.unmatched = 0
        host.default_handler = self._on_reply

    def replay(self, events: List[TraceEvent]) -> None:
        base = self.sim.now
        for event in events:
            self.sim.schedule_at(base + event.time_us, self._send_one, event)

    def _send_one(self, event: TraceEvent) -> None:
        self._sent_at[event.trace_id] = self.sim.now
        self.host.send(event.pkt)

    def _on_reply(self, pkt: Packet) -> None:
        trace_id = pkt.ip.identification if pkt.ip is not None else None
        sent = self._sent_at.pop(trace_id, None)
        if sent is None:
            self.unmatched += 1
            return
        rtt = self.sim.now - sent
        self.rtts_us.append(rtt)
        self._h_rtt.observe(rtt)

    @property
    def lost(self) -> int:
        """Probes that never came back (dropped or still pending)."""
        return len(self._sent_at)

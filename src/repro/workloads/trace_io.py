"""Trace file I/O: save and replay packet traces as CSV.

The paper replays real datacenter/enterprise captures; this module gives
users the file interface to do the same with their own data. The format
is one packet per line::

    time_us,src_ip,dst_ip,proto,sport,dport,size_bytes[,vlan]

IPs dotted-quad or integer; `#` lines are comments. Loading yields the
same :class:`~repro.workloads.traces.TraceEvent` objects the synthetic
generators produce, so traces drop into every harness unchanged.
"""

from __future__ import annotations

import csv
from typing import Iterable, List, Optional, TextIO

from repro.net.packet import (
    IPV4_HEADER_LEN,
    Packet,
    PROTO_TCP,
    PROTO_UDP,
    UDP_HEADER_LEN,
    TCP_HEADER_LEN,
    ip_aton,
)
from repro.workloads.traces import TraceEvent

_HEADER = ["time_us", "src_ip", "dst_ip", "proto", "sport", "dport",
           "size_bytes", "vlan"]


def _parse_ip(field: str) -> int:
    field = field.strip()
    if "." in field:
        return ip_aton(field)
    return int(field)


def load_trace(stream: TextIO, limit: Optional[int] = None) -> List[TraceEvent]:
    """Parse a CSV trace into replayable events.

    Packet payloads are zero-filled to the recorded wire size; trace ids
    are assigned sequentially and embedded in the IP identification field
    (the convention every harness in this repo matches on).
    """
    events: List[TraceEvent] = []
    reader = csv.reader(stream)
    for row in reader:
        if not row or row[0].lstrip().startswith("#"):
            continue
        if row[0].strip() == "time_us":
            continue  # header line
        if len(row) < 7:
            raise ValueError(f"malformed trace row: {row!r}")
        time_us = float(row[0])
        src, dst = _parse_ip(row[1]), _parse_ip(row[2])
        proto = int(row[3])
        sport, dport = int(row[4]), int(row[5])
        size = int(row[6])
        vlan = int(row[7]) if len(row) > 7 and row[7].strip() else None

        overhead = 14 + IPV4_HEADER_LEN + (4 if vlan is not None else 0)
        if proto == PROTO_TCP:
            pkt = Packet.tcp(src, dst, sport, dport, vlan=vlan,
                             payload=b"\x00" * max(0, size - overhead
                                                   - TCP_HEADER_LEN))
        elif proto == PROTO_UDP:
            pkt = Packet.udp(src, dst, sport, dport, vlan=vlan,
                             payload=b"\x00" * max(0, size - overhead
                                                   - UDP_HEADER_LEN))
        else:
            raise ValueError(f"unsupported protocol {proto} in trace")
        trace_id = len(events)
        pkt.ip.identification = trace_id & 0xFFFF
        events.append(TraceEvent(time_us=time_us, pkt=pkt,
                                 trace_id=trace_id, flow=sport))
        if limit is not None and len(events) >= limit:
            break
    return events


def save_trace(stream: TextIO, events: Iterable[TraceEvent],
               header: bool = True) -> int:
    """Write events out in the CSV format; returns the row count."""
    writer = csv.writer(stream)
    if header:
        writer.writerow(_HEADER)
    count = 0
    for event in events:
        pkt = event.pkt
        if pkt.ip is None or pkt.l4 is None:
            raise ValueError("only IP/UDP/TCP packets can be saved")
        writer.writerow([
            f"{event.time_us:.3f}",
            pkt.ip.src,
            pkt.ip.dst,
            pkt.ip.proto,
            pkt.l4.sport,
            pkt.l4.dport,
            pkt.byte_size(),
            pkt.vlan if pkt.vlan is not None else "",
        ])
        count += 1
    return count

"""Synthetic packet traces standing in for the paper's real traces.

The paper replays a datacenter trace [2] and an enterprise trace [1]
(100,000 packets, 64-1500 B). Those corpora are not redistributable, so we
synthesize traces with the characteristics the experiments depend on:

* a Zipf flow-popularity distribution (heavy-tailed flow sizes, as in DC
  measurement studies);
* the bimodal packet-size mix of datacenter traffic (many minimum-size
  packets, a large share of MTU-size);
* per-application packet formats (plain 5-tuple traffic, GTP data +
  signaling at the paper's 1:17 ratio, KV ops at a configurable update
  ratio, VLAN-tagged tenant traffic).

Every generator is deterministic given its seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.net.packet import Packet
from repro.apps.epc_sgw import make_data_packet, make_signaling_packet
from repro.apps.kv_store import OP_READ, OP_UPDATE, make_request

#: Empirical-ish datacenter packet-size buckets (bytes) and weights,
#: matching the bimodal 64-vs-MTU shape of the IMC'10 DC traces.
SIZE_BUCKETS: List[Tuple[int, float]] = [
    (64, 0.45),
    (128, 0.10),
    (256, 0.09),
    (512, 0.08),
    (1024, 0.08),
    (1500, 0.20),
]


@dataclass
class TraceEvent:
    """One packet release: when, what, and a trace id for latency matching."""

    time_us: float
    pkt: Packet
    trace_id: int
    flow: int


def _zipf_flow(rng: random.Random, num_flows: int, skew: float) -> int:
    """Sample a flow index with Zipf(s=skew) popularity."""
    # Inverse-CDF over precomputed weights would be faster, but trace sizes
    # here are modest; rejection-free weighted choice is fine.
    weights = getattr(_zipf_flow, "_cache", None)
    if weights is None or len(weights) != num_flows:
        weights = [1.0 / ((i + 1) ** skew) for i in range(num_flows)]
        _zipf_flow._cache = weights  # type: ignore[attr-defined]
    return rng.choices(range(num_flows), weights=weights, k=1)[0]


def packet_size(rng: random.Random) -> int:
    sizes, weights = zip(*SIZE_BUCKETS)
    return rng.choices(sizes, weights=weights, k=1)[0]


def five_tuple_trace(
    num_packets: int,
    num_flows: int,
    src_ip: int,
    dst_ip: int,
    mean_gap_us: float = 5.0,
    zipf_skew: float = 1.1,
    base_sport: int = 20000,
    dport: int = 7777,
    flow_stagger_us: float = 0.0,
    seed: int = 0,
) -> List[TraceEvent]:
    """Plain UDP 5-tuple traffic from one sender (NAT/firewall/counter).

    ``flow_stagger_us`` spreads flow *arrivals* over time (flow ``f``
    becomes eligible at ``f * stagger``), modeling connections opening
    throughout the trace as in the real captures, rather than every flow
    appearing in the first millisecond.
    """
    rng = random.Random(seed)
    events: List[TraceEvent] = []
    t = 0.0
    for i in range(num_packets):
        flow = _zipf_flow(rng, num_flows, zipf_skew)
        if flow_stagger_us > 0.0:
            eligible = max(1, min(num_flows, int(t / flow_stagger_us) + 1))
            flow = flow % eligible
        size = packet_size(rng)
        payload = b"\x00" * max(0, size - 42)
        pkt = Packet.udp(src_ip, dst_ip, base_sport + flow, dport, payload=payload)
        pkt.ip.identification = i & 0xFFFF
        events.append(TraceEvent(time_us=t, pkt=pkt, trace_id=i, flow=flow))
        t += rng.expovariate(1.0 / mean_gap_us)
    return events


def epc_trace(
    num_packets: int,
    num_users: int,
    src_ip: int,
    dst_ip: int,
    signaling_every: int = 18,
    mean_gap_us: float = 5.0,
    seed: int = 0,
) -> List[TraceEvent]:
    """GTP traffic: 1 signaling packet per ``signaling_every - 1`` data
    packets (the paper injects one per 17 data packets, i.e. 1/18 of all)."""
    rng = random.Random(seed)
    events: List[TraceEvent] = []
    teids = {user: 1000 + user for user in range(num_users)}
    t = 0.0
    for i in range(num_packets):
        user = rng.randrange(num_users)
        if i % signaling_every == signaling_every - 1:
            teids[user] += 1
            pkt = make_signaling_packet(src_ip, dst_ip, user, teids[user])
        else:
            pkt = make_data_packet(
                src_ip, dst_ip, user, teids[user],
                payload=b"\x00" * max(0, packet_size(rng) - 50),
            )
        pkt.ip.identification = i & 0xFFFF
        events.append(TraceEvent(time_us=t, pkt=pkt, trace_id=i, flow=user))
        t += rng.expovariate(1.0 / mean_gap_us)
    return events


def kv_trace(
    num_packets: int,
    num_keys: int,
    src_ip: int,
    update_ratio: float,
    mean_gap_us: float = 5.0,
    seed: int = 0,
) -> List[TraceEvent]:
    """KV requests with uniformly random keys (Fig 13's workload)."""
    if not 0.0 <= update_ratio <= 1.0:
        raise ValueError("update ratio must be in [0, 1]")
    rng = random.Random(seed)
    events: List[TraceEvent] = []
    t = 0.0
    for i in range(num_packets):
        key = rng.randrange(num_keys)
        # The source port is a function of the key so that ECMP routes all
        # requests for one object to the same switch (partition affinity,
        # §2 "Network model") — otherwise every object's lease would
        # ping-pong between switches.
        sport = 5301 + (key % 64)
        if rng.random() < update_ratio:
            pkt = make_request(src_ip, OP_UPDATE, key,
                               value=rng.randrange(1 << 30), sport=sport)
        else:
            pkt = make_request(src_ip, OP_READ, key, sport=sport)
        pkt.ip.identification = i & 0xFFFF
        events.append(TraceEvent(time_us=t, pkt=pkt, trace_id=i, flow=key))
        t += rng.expovariate(1.0 / mean_gap_us)
    return events


def vlan_trace(
    num_packets: int,
    vlans: List[int],
    flows_per_vlan: int,
    src_ip: int,
    dst_ip: int,
    mean_gap_us: float = 5.0,
    zipf_skew: float = 1.2,
    seed: int = 0,
) -> List[TraceEvent]:
    """VLAN-tagged tenant traffic for the heavy-hitter detector."""
    rng = random.Random(seed)
    events: List[TraceEvent] = []
    t = 0.0
    for i in range(num_packets):
        vlan = rng.choice(vlans)
        flow = _zipf_flow(rng, flows_per_vlan, zipf_skew)
        pkt = Packet.udp(
            src_ip, dst_ip, 30000 + flow, 7777,
            payload=b"\x00" * max(0, packet_size(rng) - 46), vlan=vlan,
        )
        pkt.ip.identification = i & 0xFFFF
        events.append(TraceEvent(time_us=t, pkt=pkt, trace_id=i, flow=flow))
        t += rng.expovariate(1.0 / mean_gap_us)
    return events


def replay(sim, host, events: List[TraceEvent]) -> None:
    """Schedule a trace's packets for transmission from ``host``."""
    for event in events:
        sim.schedule_at(sim.now + event.time_us, host.send, event.pkt)

"""In-switch NAT (§6, application 1) — the paper's exemplar application.

Translates between an internal address space (the datacenter racks) and a
public NAT address. The translation entry for a connection is per-flow hard
state: lose it and the connection is broken (Fig 1), which is precisely the
failure RedPlane repairs.

This reproduction implements a *port-preserving* NAT: the public-side port
equals the internal source port, so a single partition key — built from the
remote endpoint and the public-side port, both visible in either direction
— covers the whole connection. A full NAPT additionally draws public ports
from a pool; that pool is global state owned by the state-store servers
(§3), which the load balancer app exercises through the store-side
allocator. The translation table itself is match-table state, so restoring
it on a switch goes through the control plane
(``requires_control_plane_install``), giving new-flow packets the
99th-percentile latency of Fig 8.
"""

from __future__ import annotations

from typing import Optional

from repro.net.packet import (
    FlowKey,
    Packet,
    TCPHeader,
    TCP_SYN,
    UDPHeader,
    ip_aton,
)
from repro.net.routing import L3Switch
from repro.net.topology import Testbed
from repro.core.app import AppVerdict, InSwitchApp
from repro.core.flowstate import FlowStateView, StateSpec

#: Public address of the NAT cluster; routed to both aggregation switches
#: (ECMP anycast), matching the paper's cluster deployment of NATs (§4.3).
NAT_PUBLIC_IP = ip_aton("192.0.2.1")

#: The internal address space being translated.
INTERNAL_PREFIX = ip_aton("10.0.0.0")
INTERNAL_MASK_LEN = 16


def is_internal(ip: int) -> bool:
    return (ip >> (32 - INTERNAL_MASK_LEN)) == (
        INTERNAL_PREFIX >> (32 - INTERNAL_MASK_LEN)
    )


class NatApp(InSwitchApp):
    """Per-connection source NAT with fault-tolerant translation state."""

    name = "nat"
    #: Translation entry: the internal endpoint this connection maps to.
    #: ``established`` guards against inbound packets for unknown flows.
    state_spec = StateSpec.of(("int_ip", 0), ("established", 0))
    requires_control_plane_install = True

    def __init__(self, public_ip: int = NAT_PUBLIC_IP) -> None:
        self.public_ip = public_ip
        self.translated_out = 0
        self.translated_in = 0
        self.dropped_unknown = 0

    def partition_key(self, pkt: Packet) -> Optional[FlowKey]:
        """One key for both directions: (remote endpoint, public port)."""
        if pkt.ip is None or not isinstance(pkt.l4, (UDPHeader, TCPHeader)):
            return None
        if is_internal(pkt.ip.src) and not is_internal(pkt.ip.dst):
            # Outbound: remote is the destination; public port will be the
            # (preserved) internal source port.
            return FlowKey(pkt.ip.dst, self.public_ip, pkt.ip.proto,
                           pkt.l4.dport, pkt.l4.sport)
        if pkt.ip.dst == self.public_ip:
            # Inbound: remote is the source; public port is the dest port.
            return FlowKey(pkt.ip.src, self.public_ip, pkt.ip.proto,
                           pkt.l4.sport, pkt.l4.dport)
        return None  # transit traffic, not ours

    def process(self, state: FlowStateView, pkt, ctx, switch) -> AppVerdict:
        if is_internal(pkt.ip.src):
            # Outbound: create the translation entry on the connection-
            # opening packet (the only state write; read-centric after).
            # Out-of-state TCP packets that are not connection-opening are
            # dropped, as a stateful/conntrack NAT does — this is exactly
            # why losing the table breaks established connections (Fig 1).
            if not state.get("established"):
                if isinstance(pkt.l4, TCPHeader) and not pkt.l4.has(TCP_SYN):
                    self.dropped_unknown += 1
                    return AppVerdict.DROP
                state.set("int_ip", pkt.ip.src)
                state.set("established", 1)
            pkt.ip.src = self.public_ip
            self.translated_out += 1
            return AppVerdict.FORWARD
        # Inbound: translate back to the internal endpoint, or drop if the
        # connection is unknown (no translation state = broken connection,
        # exactly the Fig 1 failure mode when state is lost).
        if not state.get("established"):
            self.dropped_unknown += 1
            return AppVerdict.DROP
        pkt.ip.dst = state.get("int_ip")
        self.translated_in += 1
        return AppVerdict.FORWARD

    def resource_usage(self) -> dict:
        return {
            "sram_bits": 4096 * 168,
            "match_crossbar_bits": 208,
            "hash_bits": 104,
            "vliw_instructions": 6,
            "gateways": 4,
        }


def install_nat_routes(bed: Testbed, public_ip: int = NAT_PUBLIC_IP) -> None:
    """Route the NAT public address to the aggregation switches.

    Core switches ECMP the public /32 across both programmable switches —
    the anycast deployment of §4.3 — so inbound traffic reaches *some*
    NAT instance, and RedPlane's lease migration covers the rest.
    """
    for core in bed.cores:
        agg_ports = []
        for port in core.ports:
            if port.link is not None and port.link.other_end(port).node in bed.aggs:
                agg_ports.append(port)
        if agg_ports:
            core.table.add(public_ip, 32, agg_ports)
    for tor in bed.tors:
        # Internal servers send to the public IP via their default route
        # (already installed); nothing to add at the ToR layer.
        pass

"""Per-flow packet counters (§6, application 6).

``SyncCounterApp`` updates state on *every* packet and therefore needs
synchronous replication — the paper's worst case ("Sync-Counter" in
Figs 9/10/12). ``AsyncCounterApp`` keeps the counters in a lazy-snapshot
array and replicates them periodically ("Async-Counter", bounded
inconsistency).
"""

from __future__ import annotations

import zlib
from typing import Optional

from repro.net.packet import FlowKey, Packet
from repro.apps.nat import is_internal
from repro.core.app import AppVerdict, InSwitchApp
from repro.core.flowstate import FlowStateView, StateSpec
from repro.core.snapshot import LazySnapshotArray


class SyncCounterApp(InSwitchApp):
    """Counts packets per IP 5-tuple; every packet is a state update.

    Only the datacenter-bound direction is counted (like the paper's
    measurement setup, where the reflected packets of the RTT harness do
    not traverse the counter a second time).
    """

    name = "sync-counter"
    state_spec = StateSpec.of(("count", 0))

    def partition_key(self, pkt: Packet) -> Optional[FlowKey]:
        if pkt.ip is None or not is_internal(pkt.ip.dst):
            return None
        # Directional key: the counter counts one direction of a flow.
        return pkt.flow_key()

    def process(self, state: FlowStateView, pkt, ctx, switch) -> AppVerdict:
        state.increment("count")
        return AppVerdict.FORWARD

    def resource_usage(self) -> dict:
        return {"sram_bits": 4096 * 32, "meter_alus": 1, "vliw_instructions": 2}


class AsyncCounterApp(InSwitchApp):
    """Per-flow counters in a lazy-snapshot array, replicated periodically.

    State lives outside the engine's per-flow value registers: the app owns
    a :class:`LazySnapshotArray` indexed by a hash of the 5-tuple, and a
    :class:`~repro.core.snapshot.SnapshotReplicator` ships snapshots every
    period. Packet processing never writes engine-visible state, so every
    packet takes the line-rate fast path.
    """

    name = "async-counter"
    state_spec = StateSpec.of()

    #: Store partition key under which all counter snapshots are filed.
    STORE_KEY = FlowKey(0, 0, 0, 0, 1)

    def __init__(self, slots: int = 64) -> None:
        self.counters = LazySnapshotArray("async-counter", slots)

    def partition_key(self, pkt: Packet) -> Optional[FlowKey]:
        if pkt.ip is None or not is_internal(pkt.ip.dst):
            return None
        return pkt.flow_key()

    def slot_of(self, key: FlowKey) -> int:
        return zlib.crc32(key.pack()) % self.counters.size

    def process(self, state: FlowStateView, pkt, ctx, switch) -> AppVerdict:
        self.counters.update(ctx, self.slot_of(pkt.flow_key()), 1)
        return AppVerdict.FORWARD

    def resource_usage(self) -> dict:
        return {
            "sram_bits": self.counters.sram_bits(),
            "meter_alus": 3,
            "vliw_instructions": 4,
        }

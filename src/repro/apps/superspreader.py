"""Super-spreader detection (Table 1, write-centric).

Detects sources that contact many distinct destinations (scanners, worms)
— the paper cites SpreadSketch [72]. Per-source distinct-destination
counting uses a Bloom-filter-guarded counter in switch registers: a
(src, dst) pair is hashed into a membership array; pairs seen for the
first time increment the source's spread estimate.

Every packet may write (membership bits and possibly the counter), so the
app runs in bounded-inconsistency mode: the membership array and the
spread counters live in lazy-snapshot arrays replicated periodically. A
switch failure without RedPlane zeroes the estimates ("inaccurate
detection", Table 1); with RedPlane the detector recovers to at most one
snapshot period stale.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional

from repro.net.packet import FlowKey, Packet
from repro.core.app import AppVerdict, InSwitchApp
from repro.core.flowstate import FlowStateView, StateSpec
from repro.core.snapshot import LazySnapshotArray
from repro.sketch.countmin import sketch_hash

#: Pseudo protocol number for the detector's store partition keys.
_SPREAD_KEY_PROTO = 0xFA

#: Store partition keys for the two replicated structures.
def membership_store_key(row: int) -> FlowKey:
    return FlowKey(1, row, _SPREAD_KEY_PROTO, 0, 0)


SPREAD_STORE_KEY = FlowKey(2, 0, _SPREAD_KEY_PROTO, 0, 0)


class SuperSpreaderApp(InSwitchApp):
    """Distinct-destination spread estimation per source."""

    name = "superspreader"
    state_spec = StateSpec.of()  # all state lives in lazy-snapshot arrays
    #: Bloom membership bits and spread counters are hash-indexed over
    #: (src, dst) pairs under a single constant store key: every flow
    #: shares them (verify pass 5, RS4xx).
    shard_class = "global"
    shard_reason = (
        "Bloom membership and per-source spread counters aggregate over "
        "all (src, dst) pairs; any two flows may collide in both "
        "structures"
    )

    def __init__(self, threshold: int = 32, membership_bits: int = 512,
                 spread_slots: int = 128, hash_rows: int = 2) -> None:
        self.threshold = threshold
        self.hash_rows = hash_rows
        #: Bloom-filter membership over (src, dst) pairs, one lazy array
        #: per hash row (each array still touched once per packet).
        self.membership = [
            LazySnapshotArray(f"spread.member{row}", membership_bits, 1)
            for row in range(hash_rows)
        ]
        #: Per-source spread estimate, indexed by a source hash.
        self.spread = LazySnapshotArray("spread.count", spread_slots)
        self.flagged = 0
        self.packets_processed = 0

    def snapshot_structures(self) -> Dict[FlowKey, LazySnapshotArray]:
        out = {
            membership_store_key(row): array
            for row, array in enumerate(self.membership)
        }
        out[SPREAD_STORE_KEY] = self.spread
        return out

    def partition_key(self, pkt: Packet) -> Optional[FlowKey]:
        if pkt.ip is None:
            return None
        return SPREAD_STORE_KEY

    def source_slot(self, src_ip: int) -> int:
        return zlib.crc32(b"src" + src_ip.to_bytes(4, "big")) % self.spread.size

    def process(self, state: FlowStateView, pkt, ctx, switch) -> AppVerdict:
        self.packets_processed += 1
        pair = pkt.ip.src.to_bytes(4, "big") + pkt.ip.dst.to_bytes(4, "big")
        # Bloom membership: the pair is new iff any row's bit was clear.
        # Each row's test-and-set is one fused stateful-ALU access.
        new_pair = False
        for row, array in enumerate(self.membership):
            prev = array.test_and_set(ctx, sketch_hash(pair, row, array.size))
            if prev == 0:
                new_pair = True
        slot = self.source_slot(pkt.ip.src)
        estimate = self.spread.update(ctx, slot, 1 if new_pair else 0)
        if estimate >= self.threshold:
            pkt.meta["superspreader"] = True
            self.flagged += 1
        return AppVerdict.FORWARD

    def estimate(self, src_ip: int) -> int:
        """Control-plane query of a source's current spread estimate."""
        return self.spread.cp_live_values()[self.source_slot(src_ip)]

    def resource_usage(self) -> dict:
        bits = sum(a.sram_bits() for a in self.membership)
        return {
            "sram_bits": bits + self.spread.sram_bits(),
            "meter_alus": self.hash_rows + 1,
            "hash_bits": 32 * (self.hash_rows + 1),
            "vliw_instructions": 2 * self.hash_rows + 3,
            "gateways": 4,
        }

"""EPC serving gateway (§6, application 4) — mixed read/write.

A cellular packet core SGW routes user traffic based on per-user tunnel
endpoint IDs (TEIDs). Data packets (GTP-U) *read* the user's TEID; control
signaling (GTP-C: attach, handover) *updates* it. Signaling runs at a few
percent of the data rate (the paper injects 1 signaling packet per 17 data
packets, after [56, 62]), so this is the paper's mixed-read/write class:
synchronous replication on the (rare) writes, line-rate on reads.

Packet formats are simplified GTP: a UDP datagram to the GTP port whose
payload starts with a message-kind byte (data vs. signaling), the user id,
and the TEID. Carrying both kinds on one UDP port (real GTP splits them
across 2152/2123) keeps the fabric's per-partition ECMP affinity intact —
a user's signaling and data must reach the same switch, or every signaling
message would migrate the lease between switches (see DESIGN.md).
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

from repro.net.packet import FlowKey, Packet, UDPHeader
from repro.core.app import AppVerdict, InSwitchApp
from repro.core.flowstate import FlowStateView, StateSpec

#: The (unified) GTP port; see module docstring.
GTP_PORT = 2152
#: Backwards-compatible aliases for the two traffic kinds.
GTPU_PORT = GTP_PORT
GTPC_PORT = GTP_PORT

#: Message kinds in the simplified GTP header.
GTP_KIND_DATA = 0
GTP_KIND_SIGNALING = 1

#: Pseudo protocol number for the per-user partition key.
_USER_KEY_PROTO = 0xFE

_GTP = struct.Struct("!BII")  # kind, user id, teid


def make_data_packet(src_ip: int, dst_ip: int, user_id: int, teid: int,
                     payload: bytes = b"") -> Packet:
    """A GTP-U data packet for ``user_id`` encapsulated with ``teid``."""
    body = _GTP.pack(GTP_KIND_DATA, user_id, teid) + payload
    return Packet.udp(src_ip, dst_ip, GTP_PORT, GTP_PORT, payload=body)


def make_signaling_packet(src_ip: int, dst_ip: int, user_id: int,
                          new_teid: int) -> Packet:
    """A GTP-C signaling packet installing ``new_teid`` for ``user_id``."""
    body = _GTP.pack(GTP_KIND_SIGNALING, user_id, new_teid)
    return Packet.udp(src_ip, dst_ip, GTP_PORT, GTP_PORT, payload=body)


def is_signaling(pkt: Packet) -> bool:
    return len(pkt.payload) >= 1 and pkt.payload[0] == GTP_KIND_SIGNALING


def _parse_gtp(pkt: Packet) -> Optional[Tuple[int, int, int]]:
    if len(pkt.payload) < _GTP.size:
        return None
    return _GTP.unpack_from(pkt.payload, 0)


class EpcSgwApp(InSwitchApp):
    """Per-user TEID state: read by data packets, written by signaling."""

    name = "epc-sgw"
    state_spec = StateSpec.of(("teid", 0), ("session_active", 0))
    #: The GTP user id lives in the payload, so the partition decision
    #: depends on packet bytes, not just headers (RP141).
    partition_inputs = "packet"

    def __init__(self) -> None:
        self.data_forwarded = 0
        self.signaling_processed = 0
        self.no_session_drops = 0

    def user_key(self, user_id: int) -> FlowKey:
        return FlowKey(user_id, 0, _USER_KEY_PROTO, 0, 0)

    def partition_key(self, pkt: Packet) -> Optional[FlowKey]:
        if pkt.ip is None or not isinstance(pkt.l4, UDPHeader):
            return None
        if pkt.l4.dport != GTP_PORT:
            return None
        parsed = _parse_gtp(pkt)
        if parsed is None:
            return None
        _kind, user_id, _teid = parsed
        return self.user_key(user_id)

    def process(self, state: FlowStateView, pkt, ctx, switch) -> AppVerdict:
        kind, user_id, value = _parse_gtp(pkt)
        if kind == GTP_KIND_SIGNALING:
            # Signaling: install/refresh the user's tunnel endpoint.
            state.set("teid", value)
            state.set("session_active", 1)
            self.signaling_processed += 1
            return AppVerdict.FORWARD
        # Data: route only if the session exists and the TEID matches.
        if not state.get("session_active"):
            self.no_session_drops += 1
            return AppVerdict.DROP
        teid = state.get("teid")
        if teid != value:
            # Stale encapsulation (e.g. pre-handover TEID): rewrite to the
            # current tunnel, as a real SGW would re-encapsulate.
            pkt.payload = _GTP.pack(kind, user_id, teid) + pkt.payload[_GTP.size:]
        self.data_forwarded += 1
        return AppVerdict.FORWARD

    def resource_usage(self) -> dict:
        return {
            "sram_bits": 4096 * 96,
            "match_crossbar_bits": 64,
            "hash_bits": 32,
            "vliw_instructions": 5,
            "gateways": 4,
        }

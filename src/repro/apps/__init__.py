"""The paper's stateful in-switch applications (§6, Table 1)."""

from repro.apps.counter import AsyncCounterApp, SyncCounterApp
from repro.apps.epc_sgw import (
    EpcSgwApp,
    GTP_PORT,
    GTPC_PORT,
    GTPU_PORT,
    is_signaling,
    make_data_packet,
    make_signaling_packet,
)
from repro.apps.firewall import (
    FirewallApp,
    STATE_CLOSED,
    STATE_ESTABLISHED,
    STATE_NEW,
)
from repro.apps.heavy_hitter import HeavyHitterApp, vlan_store_key
from repro.apps.kv_store import (
    KV_SERVICE_IP,
    KV_UDP_PORT,
    KvStoreApp,
    OP_READ,
    OP_UPDATE,
    install_kv_routes,
    make_request,
    parse_reply,
)
from repro.apps.load_balancer import (
    LoadBalancerApp,
    VIP,
    install_vip_routes,
    make_dip_allocator,
)
from repro.apps.nat import NAT_PUBLIC_IP, NatApp, install_nat_routes, is_internal
from repro.apps.sequencer import (
    SEQUENCER_IP,
    SEQUENCER_PORT,
    SequencerApp,
    install_sequencer_routes,
    make_sequenced_request,
    parse_stamp,
)
from repro.apps.superspreader import SPREAD_STORE_KEY, SuperSpreaderApp
from repro.apps.syn_defense import SynDefenseApp, syn_cookie

#: Every §6 application, deployable with defaults — the set
#: ``repro.tools verify --all`` sweeps. Each spec gives a zero-argument
#: factory and, for apps whose state lives in lazy-snapshot structures,
#: a ``structures`` callable (app -> {store_key: LazySnapshotArray})
#: so verification runs with the snapshot replicator in the pipeline,
#: exactly as the experiments deploy them.
BUILTIN_APPS = {
    "async_counter": {
        "factory": AsyncCounterApp,
        "structures": lambda app: {AsyncCounterApp.STORE_KEY: app.counters},
    },
    "sync_counter": {"factory": SyncCounterApp},
    "epc_sgw": {"factory": EpcSgwApp},
    "firewall": {"factory": FirewallApp},
    "heavy_hitter": {
        "factory": lambda: HeavyHitterApp(vlans=[10, 20]),
        "structures": lambda app: app.snapshot_structures(),
    },
    "kv_store": {"factory": KvStoreApp},
    "load_balancer": {"factory": LoadBalancerApp},
    "nat": {"factory": NatApp},
    "sequencer": {"factory": SequencerApp},
    "superspreader": {
        "factory": SuperSpreaderApp,
        "structures": lambda app: app.snapshot_structures(),
    },
    "syn_defense": {"factory": SynDefenseApp},
}

__all__ = [
    "BUILTIN_APPS",
    "AsyncCounterApp",
    "SyncCounterApp",
    "EpcSgwApp",
    "GTP_PORT",
    "GTPC_PORT",
    "GTPU_PORT",
    "is_signaling",
    "make_data_packet",
    "make_signaling_packet",
    "FirewallApp",
    "STATE_CLOSED",
    "STATE_ESTABLISHED",
    "STATE_NEW",
    "HeavyHitterApp",
    "vlan_store_key",
    "KV_SERVICE_IP",
    "KV_UDP_PORT",
    "KvStoreApp",
    "OP_READ",
    "OP_UPDATE",
    "install_kv_routes",
    "make_request",
    "parse_reply",
    "LoadBalancerApp",
    "VIP",
    "install_vip_routes",
    "make_dip_allocator",
    "NAT_PUBLIC_IP",
    "NatApp",
    "install_nat_routes",
    "is_internal",
    "SEQUENCER_IP",
    "SEQUENCER_PORT",
    "SequencerApp",
    "install_sequencer_routes",
    "make_sequenced_request",
    "parse_stamp",
    "SPREAD_STORE_KEY",
    "SuperSpreaderApp",
    "SynDefenseApp",
    "syn_cookie",
]

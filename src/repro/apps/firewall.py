"""Stateful firewall (§6, application 2).

Tracks per-connection TCP state: connections initiated from the internal
network are allowed; unsolicited inbound traffic is dropped. The
connection table is per-5-tuple hard state — after a switch failure,
without RedPlane the replacement switch would drop every established
connection's inbound packets (Table 1: "Connection broken").

State is written once, when the internal SYN establishes the connection
(read-centric thereafter), and the table restore goes through the control
plane like any match-table state.
"""

from __future__ import annotations

from typing import Optional

from repro.net.packet import FlowKey, Packet, TCPHeader, TCP_FIN, TCP_RST, TCP_SYN
from repro.apps.nat import is_internal
from repro.core.app import AppVerdict, InSwitchApp
from repro.core.flowstate import FlowStateView, StateSpec

# Connection states tracked per flow.
STATE_NEW = 0
STATE_ESTABLISHED = 1
STATE_CLOSED = 2


class FirewallApp(InSwitchApp):
    """Allow internally initiated TCP connections, drop the rest."""

    name = "firewall"
    state_spec = StateSpec.of(("conn_state", STATE_NEW),)
    requires_control_plane_install = True

    def __init__(self) -> None:
        self.allowed = 0
        self.blocked = 0

    def partition_key(self, pkt: Packet) -> Optional[FlowKey]:
        if pkt.ip is None or not isinstance(pkt.l4, TCPHeader):
            return None
        return pkt.flow_key().canonical()

    def process(self, state: FlowStateView, pkt, ctx, switch) -> AppVerdict:
        outbound = is_internal(pkt.ip.src)
        conn = state.get("conn_state")

        if outbound:
            if conn == STATE_NEW and pkt.l4.has(TCP_SYN):
                # Internal SYN opens the pinhole: the one state write.
                state.set("conn_state", STATE_ESTABLISHED)
            elif conn == STATE_ESTABLISHED and pkt.l4.has(TCP_RST):
                state.set("conn_state", STATE_CLOSED)
            self.allowed += 1
            return AppVerdict.FORWARD

        # Inbound: only established connections pass.
        if conn == STATE_ESTABLISHED:
            if pkt.l4.has(TCP_RST) or pkt.l4.has(TCP_FIN):
                # Remote teardown is allowed through; we keep the pinhole
                # until the internal side confirms (simplified teardown).
                self.allowed += 1
                return AppVerdict.FORWARD
            self.allowed += 1
            return AppVerdict.FORWARD
        self.blocked += 1
        return AppVerdict.DROP

    def resource_usage(self) -> dict:
        return {
            "sram_bits": 4096 * 136,
            "match_crossbar_bits": 104,
            "hash_bits": 104,
            "vliw_instructions": 4,
            "gateways": 5,
        }

"""In-network sequencer (Table 1, mixed read/write).

NOPaxos-style network ordering [46]: the switch stamps a per-group
monotonically increasing sequence number onto designated request packets,
letting replicas detect drops and reordering without running consensus in
the common case. The sequence counter is hard state — after a failover a
*lower or repeated* stamp would break the ordering guarantee ("incorrect
sequencing", Table 1). RedPlane makes the counter fault tolerant: every
stamp is a state write replicated synchronously before the stamped packet
is released, so the sequence the replicas observe never regresses even
across switch failures.

Request format (UDP payload): group id u32 + placeholder stamp u32.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.net.packet import FlowKey, Packet, UDPHeader, ip_aton
from repro.net.topology import Testbed
from repro.core.app import AppVerdict, InSwitchApp
from repro.core.flowstate import FlowStateView, StateSpec

#: Requests to be sequenced are addressed to the sequencer service IP.
SEQUENCER_IP = ip_aton("198.51.100.2")
SEQUENCER_PORT = 5400

#: Pseudo protocol number for per-group partition keys.
_GROUP_KEY_PROTO = 0xF9

_REQ = struct.Struct("!II")  # group id, stamp


def make_sequenced_request(src_ip: int, group: int, dst_ip: int,
                           sport: int = 5401) -> Packet:
    """A request that wants a sequence stamp before reaching ``dst_ip``.

    The real destination rides behind the sequencer service address in
    the payload tail; the switch stamps and re-addresses the packet.
    """
    payload = _REQ.pack(group, 0) + dst_ip.to_bytes(4, "big")
    return Packet.udp(src_ip, SEQUENCER_IP, sport, SEQUENCER_PORT,
                      payload=payload)


def parse_stamp(pkt: Packet):
    """(group, stamp) from a sequenced packet."""
    return _REQ.unpack_from(pkt.payload, 0)


class SequencerApp(InSwitchApp):
    """Per-group sequence stamping with a fault-tolerant counter."""

    name = "sequencer"
    state_spec = StateSpec.of(("next_seq", 0))
    #: The group id lives in the payload, so the partition decision
    #: depends on packet bytes, not just headers (RP141).
    partition_inputs = "packet"
    #: The sequence counter orders requests from *many* client flows of a
    #: group; shard-local counters would hand out duplicate stamps
    #: (verify pass 5, RS4xx).
    shard_class = "global"
    shard_reason = (
        "a group's sequence counter is a cross-flow ordering contract: "
        "every client flow of the group increments the same counter, and "
        "NOPaxos-style ordering breaks if two shards stamp independently"
    )

    def __init__(self, service_ip: int = SEQUENCER_IP) -> None:
        self.service_ip = service_ip
        self.stamped = 0

    def group_key(self, group: int) -> FlowKey:
        return FlowKey(group, 0, _GROUP_KEY_PROTO, 0, 0)

    def partition_key(self, pkt: Packet) -> Optional[FlowKey]:
        if (
            pkt.ip is None
            or pkt.ip.dst != self.service_ip
            or not isinstance(pkt.l4, UDPHeader)
            or pkt.l4.dport != SEQUENCER_PORT
            or len(pkt.payload) < _REQ.size + 4
        ):
            return None
        group, _stamp = _REQ.unpack_from(pkt.payload, 0)
        return self.group_key(group)

    def process(self, state: FlowStateView, pkt, ctx, switch) -> AppVerdict:
        group, _ = _REQ.unpack_from(pkt.payload, 0)
        stamp = state.increment("next_seq")
        real_dst = int.from_bytes(
            pkt.payload[_REQ.size:_REQ.size + 4], "big")
        pkt.payload = _REQ.pack(group, stamp) + pkt.payload[_REQ.size:]
        pkt.ip.dst = real_dst
        self.stamped += 1
        return AppVerdict.FORWARD

    def resource_usage(self) -> dict:
        return {
            "sram_bits": 1024 * 64,
            "match_crossbar_bits": 64,
            "hash_bits": 32,
            "meter_alus": 1,
            "vliw_instructions": 4,
            "gateways": 2,
        }


def install_sequencer_routes(bed: Testbed, service_ip: int = SEQUENCER_IP) -> None:
    """ECMP the sequencer service /32 to both aggregation switches."""
    for core in bed.cores:
        agg_ports = [
            p for p in core.ports
            if p.link is not None and p.link.other_end(p).node in bed.aggs
        ]
        if agg_ports:
            core.table.add(service_ip, 32, agg_ports)
    for tor in bed.tors:
        uplinks = [
            p for p in tor.ports
            if p.link is not None and p.link.other_end(p).node in bed.aggs
        ]
        if uplinks:
            tor.table.add(service_ip, 32, uplinks)

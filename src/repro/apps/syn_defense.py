"""SYN-flood defense (Table 1: DDoS defense, read-centric).

A SYN-cookie-style proxy in the switch, after Poseidon/NetHCF-style
designs the paper cites [76, 77]: a client's first SYN is answered by the
*switch* with a SYN-ACK carrying a cookie; only when the client returns
the matching ACK is it marked verified and allowed through to servers
(the connection is then restarted end-to-end by the client's retransmitted
SYN). Per-source verification state is hard state: losing it on a switch
failure makes the defense re-challenge (and meanwhile drop) every
legitimate verified client — Table 1's "dropping valid packets".

State is written once per source (on verification) and read afterwards:
read-centric, linearizable mode.
"""

from __future__ import annotations

import zlib
from typing import Optional

from repro.net.packet import (
    FlowKey,
    Packet,
    TCPHeader,
    TCP_ACK,
    TCP_SYN,
)
from repro.apps.nat import is_internal
from repro.core.app import AppVerdict, InSwitchApp
from repro.core.flowstate import FlowStateView, StateSpec

#: Pseudo protocol number for per-source partition keys.
_SOURCE_KEY_PROTO = 0xFB


def syn_cookie(src_ip: int, sport: int, secret: int = 0xC0FFEE) -> int:
    """The cookie embedded in the proxy's SYN-ACK sequence number."""
    material = src_ip.to_bytes(4, "big") + sport.to_bytes(2, "big")
    return zlib.crc32(material + secret.to_bytes(4, "big")) & 0xFFFFFFFF


class SynDefenseApp(InSwitchApp):
    """SYN-cookie proxy with fault-tolerant per-source verification."""

    name = "syn-defense"
    state_spec = StateSpec.of(("verified", 0))

    def __init__(self, secret: int = 0xC0FFEE) -> None:
        self.secret = secret
        self.challenges_sent = 0
        self.verified_sources = 0
        self.passed = 0
        self.dropped = 0

    def source_key(self, src_ip: int) -> FlowKey:
        return FlowKey(src_ip, 0, _SOURCE_KEY_PROTO, 0, 0)

    def partition_key(self, pkt: Packet) -> Optional[FlowKey]:
        if (
            pkt.ip is None
            or not isinstance(pkt.l4, TCPHeader)
            or is_internal(pkt.ip.src)          # outbound traffic: not ours
            or not is_internal(pkt.ip.dst)      # only protect the inside
        ):
            return None
        return self.source_key(pkt.ip.src)

    def process(self, state: FlowStateView, pkt, ctx, switch) -> AppVerdict:
        if state.get("verified"):
            self.passed += 1
            return AppVerdict.FORWARD

        cookie = syn_cookie(pkt.ip.src, pkt.l4.sport, self.secret)
        if pkt.l4.has(TCP_SYN) and not pkt.l4.has(TCP_ACK):
            # Challenge: answer the SYN ourselves with a cookie SYN-ACK.
            challenge = Packet.tcp(
                pkt.ip.dst, pkt.ip.src, pkt.l4.dport, pkt.l4.sport,
                seq=cookie, ack=(pkt.l4.seq + 1) & 0xFFFFFFFF,
                flags=TCP_SYN | TCP_ACK,
            )
            ctx.emit(challenge)
            self.challenges_sent += 1
            return AppVerdict.DROP  # the SYN itself never reaches servers

        if pkt.l4.has(TCP_ACK) and pkt.l4.ack == (cookie + 1) & 0xFFFFFFFF:
            # Correct cookie echo: the source is real. This is the single
            # state write RedPlane replicates.
            state.set("verified", 1)
            self.verified_sources += 1
            # The bare ACK of the cookie handshake is consumed; the client
            # re-opens the connection end-to-end.
            return AppVerdict.DROP

        self.dropped += 1
        return AppVerdict.DROP

    def resource_usage(self) -> dict:
        return {
            "sram_bits": 8192 * 33,
            "match_crossbar_bits": 48,
            "hash_bits": 80,
            "vliw_instructions": 6,
            "gateways": 5,
        }

"""L4 load balancer (§6, application 3).

Maps connections arriving at a virtual IP (VIP) to a direct IP (DIP) from
a server pool, SilkRoad-style. The per-connection DIP choice is hard
state: losing it mid-connection sends packets to the wrong server and
resets the connection (Table 1).

The *server pool* is global state, so — per the paper's scoping (§3) — it
is owned and managed by the state-store servers: the DIP for a new
connection is chosen by the store-side allocator and returned in the
lease-new acknowledgment. The switch data plane itself never writes state,
making the app purely read-centric.
"""

from __future__ import annotations

import zlib
from typing import List, Optional

from repro.net.packet import FlowKey, Packet, TCPHeader, UDPHeader, ip_aton
from repro.net.topology import Testbed
from repro.core.app import AppVerdict, InSwitchApp
from repro.core.flowstate import FlowStateView, StateSpec

#: The virtual IP clients connect to; ECMP-anycast to both agg switches.
VIP = ip_aton("192.0.2.80")


class LoadBalancerApp(InSwitchApp):
    """VIP -> per-connection DIP mapping with direct server return."""

    name = "load-balancer"
    state_spec = StateSpec.of(("dip", 0))
    requires_control_plane_install = True

    def __init__(self, vip: int = VIP) -> None:
        self.vip = vip
        self.forwarded = 0
        self.no_dip_drops = 0

    def partition_key(self, pkt: Packet) -> Optional[FlowKey]:
        if pkt.ip is None or not isinstance(pkt.l4, (UDPHeader, TCPHeader)):
            return None
        if pkt.ip.dst == self.vip:
            return pkt.flow_key()
        return None  # direct server return: reverse traffic bypasses the LB

    def process(self, state: FlowStateView, pkt, ctx, switch) -> AppVerdict:
        dip = state.get("dip")
        if dip == 0:
            # No DIP assigned — can only happen if the store-side allocator
            # is not configured; drop rather than black-hole.
            self.no_dip_drops += 1
            return AppVerdict.DROP
        pkt.ip.dst = dip
        self.forwarded += 1
        return AppVerdict.FORWARD

    def resource_usage(self) -> dict:
        return {
            "sram_bits": 4096 * 136,
            "match_crossbar_bits": 104,
            "hash_bits": 104,
            "vliw_instructions": 3,
            "gateways": 3,
        }


def make_dip_allocator(dips: List[int]):
    """Store-side allocator: pick a DIP for each new connection.

    Deterministic by flow key so replayed experiments are reproducible;
    the pool lives at (and is managed by) the state store, the switch only
    ever reads the resulting per-flow mapping.
    """
    if not dips:
        raise ValueError("empty DIP pool")

    def allocator(key: FlowKey) -> List[int]:
        choice = dips[zlib.crc32(b"dip" + key.pack()) % len(dips)]
        return [choice]

    return allocator


def install_vip_routes(bed: Testbed, vip: int = VIP) -> None:
    """ECMP the VIP /32 to both aggregation switches at the core layer."""
    for core in bed.cores:
        agg_ports = [
            port
            for port in core.ports
            if port.link is not None and port.link.other_end(port).node in bed.aggs
        ]
        if agg_ports:
            core.table.add(vip, 32, agg_ports)

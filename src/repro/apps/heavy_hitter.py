"""Heavy-hitter detection (§6, application 5) — write-centric.

Per-tenant (per-VLAN) heavy-flow detection with count-min sketches: three
sketch rows of 64 x 32-bit slots each, indexed by hashes of the IP 5-tuple
(the paper's exact configuration). Every packet updates all three rows, so
synchronous replication would be ruinous; the app runs in
bounded-inconsistency mode — each row lives in a
:class:`~repro.core.snapshot.LazySnapshotArray` and is replicated as
periodic consistent snapshots (§5.4).

On failure, at most the last snapshot period of counts is lost, which for
an approximate detector only perturbs estimates (Table 1: "inaccurate
detection"), and the bound epsilon makes the error reason-about-able.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.packet import FlowKey, Packet
from repro.core.app import AppVerdict, InSwitchApp
from repro.core.flowstate import FlowStateView, StateSpec
from repro.core.snapshot import LazySnapshotArray
from repro.sketch.countmin import sketch_hash

#: Pseudo protocol number for per-VLAN store partition keys.
_VLAN_KEY_PROTO = 0xFC

SKETCH_DEPTH = 3
SKETCH_WIDTH = 64


def vlan_store_key(vlan: int, row: int) -> FlowKey:
    """The store partition key for one sketch row of one tenant."""
    return FlowKey(vlan, row, _VLAN_KEY_PROTO, 0, 0)


class HeavyHitterApp(InSwitchApp):
    """Count-min-sketch heavy-hitter detector, one sketch set per VLAN."""

    name = "hh-detector"
    state_spec = StateSpec.of()  # sketch state lives in lazy-snapshot arrays
    #: A count-min sketch aggregates over *all* flows of a tenant by
    #: design: rows are indexed by 5-tuple hashes while the store key is
    #: per-VLAN, so two flows always share slots (verify pass 5, RS4xx).
    shard_class = "global"
    shard_reason = (
        "count-min sketch rows are shared accumulators across every flow "
        "of a VLAN; splitting a tenant's flows over shards would split "
        "each slot's count"
    )

    def __init__(self, vlans: List[int], threshold: int = 100,
                 depth: int = SKETCH_DEPTH, width: int = SKETCH_WIDTH) -> None:
        if not vlans:
            raise ValueError("configure at least one VLAN/tenant")
        self.vlans = list(vlans)
        self.threshold = threshold
        self.depth = depth
        self.width = width
        #: vlan -> one LazySnapshotArray per sketch row.
        self.sketches: Dict[int, List[LazySnapshotArray]] = {
            vlan: [
                LazySnapshotArray(f"hh.vlan{vlan}.row{row}", width)
                for row in range(depth)
            ]
            for vlan in vlans
        }
        self.heavy_hits = 0
        self.packets_sketched = 0

    def snapshot_structures(self) -> Dict[FlowKey, LazySnapshotArray]:
        """All replicated structures, keyed for the snapshot replicator."""
        return {
            vlan_store_key(vlan, row): array
            for vlan, rows in self.sketches.items()
            for row, array in enumerate(rows)
        }

    def partition_key(self, pkt: Packet) -> Optional[FlowKey]:
        if pkt.ip is None or pkt.vlan is None or pkt.vlan not in self.sketches:
            return None
        return vlan_store_key(pkt.vlan, 0)

    def process(self, state: FlowStateView, pkt, ctx, switch) -> AppVerdict:
        rows = self.sketches[pkt.vlan]
        item = pkt.flow_key().pack()
        estimate = None
        for row, array in enumerate(rows):
            index = sketch_hash(item, row, self.width)
            value = array.update(ctx, index, 1)
            estimate = value if estimate is None else min(estimate, value)
        self.packets_sketched += 1
        if estimate is not None and estimate >= self.threshold:
            # Flag the packet for policy action (e.g. rate limiting); the
            # detector itself forwards everything.
            pkt.meta["heavy_hitter"] = True
            self.heavy_hits += 1
        return AppVerdict.FORWARD

    def estimate(self, vlan: int, key: FlowKey) -> int:
        """Control-plane point query of the live sketch."""
        rows = self.sketches[vlan]
        item = key.pack()
        return min(
            rows[row].cp_live_values()[sketch_hash(item, row, self.width)]
            for row in range(self.depth)
        )

    def resource_usage(self) -> dict:
        return {
            "sram_bits": sum(
                array.sram_bits()
                for rows in self.sketches.values()
                for array in rows
            ),
            "meter_alus": self.depth * 3,
            "hash_bits": self.depth * 32,
            "vliw_instructions": self.depth * 3,
            "gateways": 4,
        }

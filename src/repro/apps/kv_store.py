"""In-switch key-value store (§7.2, Fig 13 / Table 1).

A NetCache-style KV service running in the switch data plane: clients send
read/update requests to a service IP; the switch answers reads from
register state at line rate and applies updates as replicated state writes.
The update ratio of the workload directly controls how often RedPlane's
synchronous replication path runs, which is what Fig 13 sweeps.

Request format (UDP payload, network order)::

    op     u8   0 = READ, 1 = UPDATE
    key    u32
    value  u32  (for updates; echoed for reads)
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.net.packet import FlowKey, Packet, UDPHeader, ip_aton
from repro.net.topology import Testbed
from repro.core.app import AppVerdict, InSwitchApp
from repro.core.flowstate import FlowStateView, StateSpec

#: Service address of the in-switch KV store (ECMP-anycast to the aggs).
KV_SERVICE_IP = ip_aton("198.51.100.1")
KV_UDP_PORT = 5300

OP_READ = 0
OP_UPDATE = 1

#: Pseudo protocol number for per-object partition keys.
_OBJECT_KEY_PROTO = 0xFD

_REQ = struct.Struct("!BII")


def make_request(src_ip: int, op: int, key: int, value: int = 0,
                 service_ip: int = KV_SERVICE_IP, sport: int = 5301) -> Packet:
    payload = _REQ.pack(op, key, value)
    return Packet.udp(src_ip, service_ip, sport, KV_UDP_PORT, payload=payload)


def parse_reply(pkt: Packet):
    """Returns (op, key, value) from a KV reply packet."""
    return _REQ.unpack_from(pkt.payload, 0)


class KvStoreApp(InSwitchApp):
    """Object storage in switch registers with per-object fault tolerance."""

    name = "kv-store"
    state_spec = StateSpec.of(("value", 0), ("exists", 0))
    #: The object key lives in the payload, so the partition decision
    #: depends on packet bytes, not just headers (RP141).
    partition_inputs = "packet"

    def __init__(self, service_ip: int = KV_SERVICE_IP) -> None:
        self.service_ip = service_ip
        self.reads = 0
        self.updates = 0
        self.misses = 0

    def object_key(self, key: int) -> FlowKey:
        return FlowKey(key, 0, _OBJECT_KEY_PROTO, 0, 0)

    def partition_key(self, pkt: Packet) -> Optional[FlowKey]:
        if (
            pkt.ip is None
            or pkt.ip.dst != self.service_ip
            or not isinstance(pkt.l4, UDPHeader)
            or pkt.l4.dport != KV_UDP_PORT
            or len(pkt.payload) < _REQ.size
        ):
            return None
        _op, key, _value = _REQ.unpack_from(pkt.payload, 0)
        return self.object_key(key)

    def process(self, state: FlowStateView, pkt, ctx, switch) -> AppVerdict:
        op, key, value = _REQ.unpack_from(pkt.payload, 0)
        if op == OP_UPDATE:
            state.set("value", value)
            state.set("exists", 1)
            self.updates += 1
            reply_value = value
        else:
            self.reads += 1
            if state.get("exists"):
                reply_value = state.get("value")
            else:
                self.misses += 1
                reply_value = 0
        # Turn the request around: the switch itself answers the client.
        pkt.payload = _REQ.pack(op, key, reply_value)
        pkt.ip.src, pkt.ip.dst = self.service_ip, pkt.ip.src
        pkt.l4.sport, pkt.l4.dport = KV_UDP_PORT, pkt.l4.sport
        return AppVerdict.FORWARD

    def resource_usage(self) -> dict:
        return {
            "sram_bits": 8192 * 96,
            "match_crossbar_bits": 72,
            "hash_bits": 32,
            "vliw_instructions": 5,
            "gateways": 3,
        }


def install_kv_routes(bed: Testbed, service_ip: int = KV_SERVICE_IP) -> None:
    """ECMP the KV service /32 to both aggregation switches."""
    for core in bed.cores:
        agg_ports = [
            port
            for port in core.ports
            if port.link is not None and port.link.other_end(port).node in bed.aggs
        ]
        if agg_ports:
            core.table.add(service_ip, 32, agg_ports)
    for tor in bed.tors:
        uplinks = [
            port
            for port in tor.ports
            if port.link is not None and port.link.other_end(port).node in bed.aggs
        ]
        if uplinks:
            tor.table.add(service_ip, 32, uplinks)

"""Back-compat shims: legacy counter dicts as views over the registry.

The pre-telemetry code exposed free-form stat dicts (``Simulator.counters``,
``RedPlaneEngine.stats``). Those dicts are now *views* over registry
instruments, so existing experiments and tests keep working unchanged
while the registry is the single source of truth. Direct writes through
the legacy ``Simulator.counters`` mapping raise a ``DeprecationWarning``;
new code should use ``sim.metrics.counter(name).inc()``.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterator, Mapping, MutableMapping

from repro.telemetry.metrics import Counter, MetricRegistry


#: Prefix of the historical flat drop-counter names, now synthesized from
#: the labeled ``link.drops{link,reason}`` counters.
_FLAT_LINK_DROPS = "link.drops."


class LegacyCounters(MutableMapping):
    """``Simulator.counters`` shim: a dict view of unlabeled counters.

    Reads reflect the registry live. Writes still work (some old
    experiment code resets counters between phases) but warn; deletion
    likewise. Labeled instruments never appear here — the legacy dict
    only ever held the flat ``sim.count()`` namespace — with one
    exception: the historical ``link.drops.<reason>`` names read as
    reason-wise totals over the labeled ``link.drops`` counters that
    replaced them.
    """

    def __init__(self, registry: MetricRegistry) -> None:
        self._registry = registry

    def _counter(self, key: str) -> Counter:
        inst = self._registry.get(key)
        if not isinstance(inst, Counter) or inst.labels:
            raise KeyError(key)
        return inst

    def _link_drop_reasons(self) -> Iterator[str]:
        seen = set()
        for inst in self._registry.instruments("link.drops"):
            if isinstance(inst, Counter) and inst.labels:
                reason = inst.label_dict.get("reason")
                if reason is not None and reason not in seen:
                    seen.add(reason)
                    yield reason

    def __getitem__(self, key: str) -> float:
        try:
            return self._counter(key).value
        except KeyError:
            if key.startswith(_FLAT_LINK_DROPS):
                reason = key[len(_FLAT_LINK_DROPS):]
                if reason in set(self._link_drop_reasons()):
                    return self._registry.total("link.drops", reason=reason)
            raise

    def __setitem__(self, key: str, value: float) -> None:
        warnings.warn(
            "writing Simulator.counters directly is deprecated; use "
            "sim.metrics.counter(name).inc() / sim.count()",
            DeprecationWarning,
            stacklevel=2,
        )
        self._registry.counter(key)._force(value)

    def __delitem__(self, key: str) -> None:
        warnings.warn(
            "deleting from Simulator.counters is deprecated; counters are "
            "registry-owned",
            DeprecationWarning,
            stacklevel=2,
        )
        self._counter(key)  # raise KeyError if absent
        self._registry.remove(key)

    def __iter__(self) -> Iterator[str]:
        for inst in self._registry.instruments():
            if isinstance(inst, Counter) and not inst.labels:
                yield inst.name
        for reason in sorted(self._link_drop_reasons()):
            yield _FLAT_LINK_DROPS + reason

    def __len__(self) -> int:
        return sum(1 for _ in iter(self))

    def __repr__(self) -> str:
        return repr(dict(self))


class StatGroupView(Mapping):
    """Read-only integer mapping over a fixed group of counters.

    ``RedPlaneEngine.stats`` and the state-store node statistics are
    published as registry counters; this view preserves the old dict
    reading surface (``eng.stats["app_packets"]``, ``dict(eng.stats)``)
    with the integer values the old code produced.
    """

    def __init__(self, counters: Dict[str, Counter]) -> None:
        self._counters = counters

    def __getitem__(self, key: str) -> int:
        return int(self._counters[key].value)

    def __iter__(self) -> Iterator[str]:
        return iter(self._counters)

    def __len__(self) -> int:
        return len(self._counters)

    def __repr__(self) -> str:
        return repr({k: int(c.value) for k, c in self._counters.items()})

"""The declared telemetry schema: every trace type and metric the run may emit.

This is the contract between the emitting components and everything that
reads telemetry downstream — span reconstruction
(:mod:`repro.telemetry.spans`), the Perfetto exporter, the analysis
layer's ``MetricRegistry.total`` aggregations, and docs/TELEMETRY.md.
The static verifier (``repro.verify``, rules RT3xx) checks every emit
site in the tree against these tables, so adding a trace type or metric
means declaring it here first — exactly like adding a P4 header field
means declaring it in the program.

Three tables:

* :data:`TRACE_EVENTS` — per trace type, the required and optional field
  names. A record missing a required field breaks whatever join keys on
  it (``uid`` for spans, ``flow`` for timelines).
* :data:`PAIRS` — span-opening types and the terminal types that close
  them. A file set that emits an opener but no closer produces spans
  that can never terminate (RT310).
* :data:`METRICS` — every metric name (exact or ``prefix.*`` pattern),
  its instrument kind, and its exact label-key set. Label keys must come
  from :data:`LABEL_DOMAINS`, which names the bounded domain of each —
  the cardinality discipline that keeps the registry from exploding
  per-packet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

from repro.telemetry import trace as tt


@dataclass(frozen=True)
class EventSpec:
    """Field contract of one trace event type."""

    required: FrozenSet[str]
    optional: FrozenSet[str] = frozenset()

    @property
    def allowed(self) -> FrozenSet[str]:
        return self.required | self.optional


def _spec(required, optional=()) -> EventSpec:
    return EventSpec(frozenset(required), frozenset(optional))


TRACE_EVENTS: Dict[str, EventSpec] = {
    tt.PACKET_SEND: _spec(
        ("link", "dir", "bytes", "uid", "kind"), ("flow", "parent")
    ),
    tt.PACKET_DELIVER: _spec(("link", "dir", "node", "uid")),
    tt.PACKET_DROP: _spec(("link", "dir", "reason", "bytes", "uid")),
    tt.PACKET_REORDER: _spec(("link", "dir", "delay_us", "uid")),
    tt.PACKET_DUP: _spec(("link", "dir", "bytes", "uid", "parent")),
    tt.RP_REQUEST: _spec(
        ("switch", "kind", "flow", "seq", "uid"), ("parent",)
    ),
    tt.RP_ACK: _spec(
        ("switch", "kind", "flow", "seq", "uid", "req_uid", "rtt_us"),
        ("cause",),
    ),
    tt.LEASE_REQUEST: _spec(("switch", "flow")),
    tt.LEASE_GRANT: _spec(("switch", "flow", "seq", "migrated")),
    tt.LEASE_RENEW: _spec(("switch", "flow")),
    tt.LEASE_EXPIRY: _spec(("switch", "flow", "expired_at")),
    tt.RETRANSMIT: _spec(
        ("switch", "kind", "flow", "seq", "timeout_us", "uid", "parent")
    ),
    tt.SNAPSHOT: _spec(("switch", "slot", "epoch")),
    tt.FAILOVER: _spec(("shard", "evicted", "new_head", "survivors")),
    tt.CHAIN_REPAIR: _spec(("node", "updates", "successor")),
    tt.STORE_RECOVER: _spec(("node", "records", "backend")),
    tt.FAULT_INJECT: _spec(("kind", "target", "detail")),
    tt.FAULT_CLEAR: _spec(("kind", "target", "detail")),
    # Rolling health detectors (repro.observe.health) share one field
    # contract: which detector fired, the observed value, the trip level.
    tt.HEALTH_RESEND_STORM: _spec(("detector", "value", "threshold")),
    tt.HEALTH_QUEUE_GROWTH: _spec(("detector", "value", "threshold")),
    tt.HEALTH_SLO_BURN: _spec(("detector", "value", "threshold")),
    tt.HEALTH_WAL_STALL: _spec(("detector", "value", "threshold")),
}

#: Span-opening type -> the terminal types that close it. Used by the
#: span builder's completeness semantics and enforced statically (RT310):
#: a file set emitting an opener must also emit at least one closer.
PAIRS: Dict[str, FrozenSet[str]] = {
    tt.PACKET_SEND: frozenset({tt.PACKET_DELIVER, tt.PACKET_DROP}),
    tt.PACKET_DUP: frozenset({tt.PACKET_DELIVER, tt.PACKET_DROP}),
    tt.RP_REQUEST: frozenset({tt.RP_ACK}),
    tt.LEASE_REQUEST: frozenset({tt.LEASE_GRANT, tt.LEASE_EXPIRY}),
    tt.FAULT_INJECT: frozenset({tt.FAULT_CLEAR}),
}

#: Every legal label key and the bounded domain its values range over.
#: A key absent here has no declared cardinality bound and is RT303 —
#: the classic offenders being per-packet values (uid, seq) that turn a
#: registry into an unbounded log.
LABEL_DOMAINS: Dict[str, str] = {
    "link": "topology links (fixed per testbed)",
    "dir": "link directions (2)",
    "reason": "drop-reason vocabulary (fixed set of strings)",
    "switch": "switch ASICs (fixed per testbed)",
    "session": "mirror session ids (few per switch)",
    "node": "state-store nodes (fixed per testbed)",
    "host": "end hosts (fixed per testbed)",
    "shard": "store shards (fixed per deployment)",
    "scope": "fast-path invalidation scopes (fixed set, repro.fastpath)",
    "detector": "health detector names (fixed set, repro.observe.health)",
    "subsystem": "profiler subsystem names (fixed set, repro.observe)",
}


@dataclass(frozen=True)
class MetricSpec:
    """One declared metric: name (exact or ``prefix.*``), kind, labels."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    labels: FrozenSet[str] = frozenset()


def _m(name: str, kind: str, *labels: str) -> MetricSpec:
    return MetricSpec(name, kind, frozenset(labels))


#: Declared metrics, most-specific first: a name is checked against each
#: entry in order and judged by the first whose pattern matches.
METRICS: Tuple[MetricSpec, ...] = (
    _m("link.tx_bytes", "counter", "link", "dir"),
    _m("link.tx_packets", "counter", "link", "dir"),
    _m("link.queue_drops", "counter", "link"),
    _m("link.duplicated", "counter", "link"),
    _m("link.drops", "counter", "link", "reason"),
    _m("mirror.active_copies", "gauge", "switch", "session"),
    _m("mirror.copies_total", "counter", "switch", "session"),
    _m("switch.buffer_occupancy_bytes", "gauge", "switch"),
    _m("switch.buffer_peak_bytes", "gauge", "switch"),
    _m("switch.bytes_original_out", "counter", "switch"),
    _m("switch.bytes_protocol_out", "counter", "switch"),
    _m("switch.bytes_protocol_in", "counter", "switch"),
    _m("switch.bytes_chain_transit", "counter", "switch"),
    _m("switch.pkts_processed", "counter", "switch"),
    _m("probe.rtt_us", "histogram", "host"),
    _m("sim.max_events_exhausted", "counter"),
    _m("fastpath.cache_hits", "counter", "switch"),
    _m("fastpath.cache_misses", "counter", "switch"),
    _m("fastpath.cache_entries", "gauge", "switch"),
    _m("fastpath.invalidations", "counter", "scope"),
    _m("redplane.ack_rtt_us", "histogram", "switch"),
    _m("redplane.resends_per_request", "histogram", "switch"),
    _m("redplane.flow_table_entries", "gauge", "switch"),
    _m("redplane.resource.*", "gauge", "switch"),
    _m("redplane.*", "counter", "switch"),
    _m("store.chain_reconfigurations", "counter"),
    # Per-node transport-layer counters (StateStoreNode and the NetChain
    # in-switch store block), declared explicitly rather than through the
    # trailing wildcard so renames surface as RT304 at the lint.
    _m("store.requests_processed", "counter", "node"),
    _m("store.updates_applied", "counter", "node"),
    _m("store.updates_rejected_stale", "counter", "node"),
    _m("store.leases_granted", "counter", "node"),
    _m("store.requests_buffered", "counter", "node"),
    _m("store.chain_repairs", "counter", "node"),
    # Storage-backend instrumentation (repro.statestore.backend and its
    # implementations): crash-recovery and WAL durability accounting.
    _m("store.backend.recoveries", "counter", "node"),
    _m("store.backend.wal_appends", "counter", "node"),
    _m("store.backend.wal_snapshots", "counter", "node"),
    _m("store.backend.wal_replayed", "counter", "node"),
    _m("store.backend.wal_bytes", "gauge", "node"),
    _m("store.backend.netchain_register_bits", "gauge", "node"),
    _m("store.backend.*", "counter", "node"),
    _m("store.*", "counter", "node"),
    # Observability layer (repro.observe): heartbeat/profiler/health
    # accounting. The whole ``observe.*`` namespace is excluded from
    # every bit-identity contract — it describes the run, it is not the
    # run — so instruments here may exist in an observed run only.
    _m("observe.heartbeats", "counter"),
    _m("observe.health.detections", "counter", "detector"),
    _m("observe.profile.events", "counter", "subsystem"),
)

#: Name patterns reachable through the flat legacy ``Simulator.count``
#: namespace (unlabeled counters with dynamic names). Kept narrow on
#: purpose: new code should use labeled instruments, not grow this list.
LEGACY_COUNT_PATTERNS: Tuple[str, ...] = (
    "*.drops.*",
    "*.cp.unhandled_punt",
    "link.reordered",
)

"""Labeled metric instruments and the registry that owns them.

Three instrument kinds, mirroring the usual metrics taxonomy:

* :class:`Counter` — monotonically increasing totals (bytes sent, drops);
* :class:`Gauge` — point-in-time levels (buffer occupancy, table entries);
* :class:`Histogram` — streaming value distributions (RTTs) with exact
  running aggregates and a bounded, deterministically decimated sample
  reservoir for interpolated percentiles.

Instruments are identified by ``(name, labels)``; the registry hands out
the same object for the same identity, so hot paths cache the handle once
at construction time and publish with a plain attribute access afterwards.

All values are floats (integer counts are exact in doubles well past any
run length this simulator reaches). Nothing here touches wall-clock time
or randomness, so publishing metrics can never perturb a seeded run.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

#: Canonical label encoding: a sorted tuple of (key, value) string pairs.
LabelItems = Tuple[Tuple[str, str], ...]


def percentile(samples: Sequence[float], p: float) -> float:
    """The p-th percentile (0-100) with linear interpolation.

    This is the canonical implementation; ``repro.analysis.stats`` re-exports
    it so the analysis layer and the histograms agree bit-for-bit.
    """
    if not samples:
        raise ValueError("no samples")
    if not 0.0 <= p <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def _label_items(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Instrument:
    """Base class: a named, labeled measurement publisher."""

    kind = "instrument"
    __slots__ = ("name", "labels")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels

    @property
    def label_dict(self) -> Dict[str, str]:
        return dict(self.labels)

    def describe(self) -> str:
        """``name{k=v,...}`` — the stable textual identity."""
        if not self.labels:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"{self.name}{{{inner}}}"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"


class Counter(Instrument):
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("_value",)

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _force(self, value: float) -> None:
        """Overwrite the total. Only the deprecation shim may call this."""
        self._value = float(value)


class Gauge(Instrument):
    """A level that can move both ways."""

    kind = "gauge"
    __slots__ = ("_value", "on_change")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        super().__init__(name, labels)
        self._value = 0.0
        #: Optional observer called with ``(gauge, op, amount)`` on every
        #: mutation (op is ``"set"``/``"add"``/``"set_max"``). Shard mode
        #: logs the operation stream so the merge layer can replay
        #: cross-flow-coupled gauges (peaks) in global order.
        self.on_change = None

    def set(self, value: float) -> None:
        if self.on_change is not None:
            self.on_change(self, "set", value)
        self._value = float(value)

    def add(self, delta: float) -> None:
        if self.on_change is not None:
            self.on_change(self, "add", delta)
        self._value += delta

    def set_max(self, value: float) -> None:
        """Ratchet: keep the running maximum (peak tracking)."""
        if self.on_change is not None:
            self.on_change(self, "set_max", value)
        if value > self._value:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Histogram(Instrument):
    """A streaming distribution with bounded, deterministic retention.

    Running ``count``/``sum``/``min``/``max`` are exact for every
    observation. The percentile reservoir keeps at most ``max_samples``
    values: when it fills, every other retained sample is discarded and
    the retention stride doubles, so memory stays bounded without drawing
    randomness (reservoir sampling would perturb nothing here, but a
    deterministic scheme keeps snapshots reproducible by construction).
    """

    kind = "histogram"
    __slots__ = ("max_samples", "count", "sum", "_min", "_max",
                 "_samples", "_stride", "_skip", "on_observe")

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        max_samples: Optional[int] = 8192,
    ) -> None:
        super().__init__(name, labels)
        if max_samples is not None and max_samples < 2:
            raise ValueError("max_samples must be >= 2 (or None)")
        self.max_samples = max_samples
        self.count = 0
        self.sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._samples: List[float] = []
        self._stride = 1
        self._skip = 0
        #: Optional observer called with ``(histogram, value)`` on every
        #: observation. Shard mode logs observations through this so the
        #: merge layer can rebuild the reference reservoir (decimation is
        #: order-dependent, so summed reservoirs would not match).
        self.on_observe = None

    def observe(self, value: float) -> None:
        value = float(value)
        if self.on_observe is not None:
            self.on_observe(self, value)
        self.count += 1
        self.sum += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        if self._skip:
            self._skip -= 1
            return
        self._samples.append(value)
        self._skip = self._stride - 1
        if self.max_samples is not None and len(self._samples) >= self.max_samples:
            self._samples = self._samples[::2]
            self._stride *= 2

    @property
    def samples(self) -> List[float]:
        """The retained (possibly decimated) sample reservoir."""
        return list(self._samples)

    @property
    def value(self) -> float:
        """Registry-uniform scalar view: the observation count."""
        return float(self.count)

    def percentile(self, p: float) -> float:
        return percentile(self._samples, p)

    def summary(self) -> Dict[str, float]:
        """The percentiles the paper quotes plus exact aggregates."""
        if self.count == 0:
            raise ValueError(f"histogram {self.name} has no observations")
        return {
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "min": float(self._min),
            "max": float(self._max),
            "mean": self.sum / self.count,
            "count": float(self.count),
        }


class MetricRegistry:
    """Get-or-create home for every instrument of one run.

    One registry per :class:`~repro.net.simulator.Simulator`; components
    create their instruments at construction time and hold the handles.
    """

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelItems], Instrument] = {}
        #: Optional observer called with each newly created instrument
        #: (shard mode hooks histogram observation logging through this).
        self.on_create = None

    # -- creation ------------------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self, name: str, max_samples: Optional[int] = 8192, **labels: object
    ) -> Histogram:
        key = (name, _label_items(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = Histogram(name, key[1], max_samples=max_samples)
            self._instruments[key] = inst
            if self.on_create is not None:
                self.on_create(inst)
        elif not isinstance(inst, Histogram):
            raise TypeError(
                f"{inst.describe()} already registered as a {inst.kind}"
            )
        return inst

    def _get_or_create(
        self, cls: Type[Instrument], name: str, labels: Dict[str, object]
    ) -> Instrument:
        key = (name, _label_items(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(name, key[1])
            self._instruments[key] = inst
            if self.on_create is not None:
                self.on_create(inst)
        elif type(inst) is not cls:
            raise TypeError(
                f"{inst.describe()} already registered as a {inst.kind}"
            )
        return inst

    # -- lookup --------------------------------------------------------------

    def get(self, name: str, **labels: object) -> Optional[Instrument]:
        return self._instruments.get((name, _label_items(labels)))

    def value(self, name: str, default: float = 0.0, **labels: object) -> float:
        inst = self.get(name, **labels)
        return inst.value if inst is not None else default

    def instruments(self, name: Optional[str] = None) -> Iterator[Instrument]:
        for (inst_name, _labels), inst in self._instruments.items():
            if name is None or inst_name == name:
                yield inst

    def total(self, name: str, **label_filter: object) -> float:
        """Sum ``value`` across instruments matching a label filter.

        A filter value may be a scalar (exact match) or a set/list/tuple
        (match any). Aggregating across label dimensions — e.g. protocol
        bytes over all switches — is how the analysis layer reads without
        touching component internals.
        """
        allowed: Dict[str, set] = {}
        for k, v in label_filter.items():
            if isinstance(v, (set, frozenset, list, tuple)):
                allowed[k] = {str(item) for item in v}
            else:
                allowed[k] = {str(v)}
        total = 0.0
        for inst in self.instruments(name):
            labels = inst.label_dict
            if all(labels.get(k) in vals for k, vals in allowed.items()):
                total += inst.value
        return total

    def remove(self, name: str, **labels: object) -> None:
        self._instruments.pop((name, _label_items(labels)), None)

    def __len__(self) -> int:
        return len(self._instruments)

    # -- export --------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A plain-data dump: kind -> {``name{labels}``: value/summary}."""
        out: Dict[str, Dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for key in sorted(self._instruments):
            inst = self._instruments[key]
            if isinstance(inst, Histogram):
                out["histograms"][inst.describe()] = (
                    inst.summary() if inst.count else {"count": 0.0}
                )
            elif isinstance(inst, Gauge):
                out["gauges"][inst.describe()] = inst.value
            else:
                out["counters"][inst.describe()] = inst.value
        return out

    def render(self) -> str:
        """Human-readable snapshot for the ``repro.tools metrics`` CLI."""
        snap = self.snapshot()
        lines: List[str] = []
        for section in ("counters", "gauges", "histograms"):
            entries = snap[section]
            lines.append(f"{section} ({len(entries)}):")
            for ident, value in entries.items():
                if isinstance(value, dict):
                    detail = "  ".join(
                        f"{k}={v:.2f}" for k, v in value.items()
                    )
                    lines.append(f"  {ident}  {detail}")
                else:
                    lines.append(f"  {ident} = {value:g}")
        return "\n".join(lines)

"""Typed, sim-timestamped trace records in a bounded ring buffer.

A :class:`Tracer` is owned by the simulator and shared by every component
of a run. Emitting is cheap (one object + one deque append) so the hot
paths — link transmits, protocol transitions — trace unconditionally; the
ring bounds memory and the optional JSONL sink streams records to disk
for offline analysis (``python -m repro.tools trace`` prints the tail).

Record timestamps are *simulated* microseconds, never wall clock, and
every field comes from deterministic run state — so two runs with the
same seed produce byte-identical trace streams (tested).

The trace vocabulary (see docs/TELEMETRY.md for the full field schema):

=====================  ====================================================
type                   emitted when
=====================  ====================================================
``packet.send``        a packet enters a link direction (even if dropped)
``packet.deliver``     a packet reaches the node at the far end of a link
``packet.drop``        a packet dies (loss, down link, queue, dead node)
``packet.reorder``     a link delays a packet past its successors
``packet.dup``         an impaired link duplicates a packet on the wire
``rp.request``         the protocol engine creates one request packet
``rp.ack``             an acknowledged request copy is released (with RTT)
``lease.request``      a switch asks the store for a flow's lease
``lease.grant``        a lease (plus migrated state) is installed
``lease.renew``        an explicit renewal is sent
``lease.expiry``       a switch notices its own lease has lapsed
``retransmit``         a circulating mirror copy times out and resends
``snapshot``           one snapshot slot value ships to the store
``failover``           a store chain is rewired around a dead node
``chain.repair``       a spliced chain head re-propagates unacked updates
``store.recover``      a crashed store rebuilds records from its backend
``fault.inject``       a chaos/failure schedule applies an injected fault
``fault.clear``        an injected fault is lifted
``health.*``           a rolling health detector trips over the heartbeat
                       stream (see :mod:`repro.observe.health`)
=====================  ====================================================
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, TextIO

PACKET_SEND = "packet.send"
PACKET_DELIVER = "packet.deliver"
PACKET_DROP = "packet.drop"
PACKET_REORDER = "packet.reorder"
PACKET_DUP = "packet.dup"
RP_REQUEST = "rp.request"
RP_ACK = "rp.ack"
LEASE_REQUEST = "lease.request"
LEASE_GRANT = "lease.grant"
LEASE_RENEW = "lease.renew"
LEASE_EXPIRY = "lease.expiry"
RETRANSMIT = "retransmit"
SNAPSHOT = "snapshot"
FAILOVER = "failover"
CHAIN_REPAIR = "chain.repair"
STORE_RECOVER = "store.recover"
FAULT_INJECT = "fault.inject"
FAULT_CLEAR = "fault.clear"
HEALTH_RESEND_STORM = "health.resend_storm"
HEALTH_QUEUE_GROWTH = "health.queue_growth"
HEALTH_SLO_BURN = "health.slo_burn"
HEALTH_WAL_STALL = "health.wal_stall"


@dataclass(slots=True)
class TraceRecord:
    """One trace event: a type, a simulated timestamp, and typed fields.

    ``slots=True`` because hot paths allocate one per wire event.
    """

    ts: float
    type: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {"ts": self.ts, "type": self.type, "fields": self.fields},
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, line: str) -> "TraceRecord":
        raw = json.loads(line)
        return cls(ts=raw["ts"], type=raw["type"], fields=raw.get("fields", {}))


class Tracer:
    """Bounded trace ring with an optional JSONL sink.

    Parameters
    ----------
    clock:
        Returns the current *simulated* time; the simulator passes its own
        ``now``. Wall-clock time must never enter a record.
    maxlen:
        Ring capacity. Old records fall off the front; ``records_emitted``
        keeps counting so truncation is detectable.
    """

    def __init__(self, clock: Callable[[], float], maxlen: int = 65536) -> None:
        self._clock = clock
        self.maxlen = maxlen
        self.enabled = True
        self.records_emitted = 0
        self._ring: Deque[TraceRecord] = deque(maxlen=maxlen)
        self._sink: Optional[TextIO] = None
        self._sink_owned = False
        #: Optional observer called with each record *after* it is
        #: appended to the ring (shard mode records origin sidecars
        #: through this). Must not emit records itself.
        self.on_emit: Optional[Callable[[TraceRecord], None]] = None

    def emit(self, type_: str, **fields: Any) -> None:
        """Record one event at the current simulated time."""
        if not self.enabled:
            return
        record = TraceRecord(self._clock(), type_, fields)
        self.records_emitted += 1
        self._ring.append(record)
        if self._sink is not None:
            self._sink.write(record.to_json() + "\n")
        if self.on_emit is not None:
            self.on_emit(record)

    # -- reading --------------------------------------------------------------

    def tail(self, n: Optional[int] = None) -> List[TraceRecord]:
        """The most recent ``n`` records (all retained records if None)."""
        if n is not None and n <= 0:
            return []
        if n is None or n >= len(self._ring):
            return list(self._ring)
        return list(self._ring)[-n:]

    def records_of(self, type_: str) -> List[TraceRecord]:
        return [r for r in self._ring if r.type == type_]

    @property
    def records_dropped(self) -> int:
        """Emitted records no longer retained (ring truncation)."""
        return self.records_emitted - len(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def clear(self) -> None:
        self._ring.clear()

    # -- JSONL sink ------------------------------------------------------------

    def open_sink(self, path: str) -> None:
        """Stream every future record to ``path`` as one JSON object/line."""
        self.close_sink()
        self._sink = open(path, "w")
        self._sink_owned = True

    def set_sink(self, stream: Optional[TextIO]) -> None:
        """Attach an already-open stream (caller keeps ownership)."""
        self.close_sink()
        self._sink = stream
        self._sink_owned = False

    def close_sink(self) -> None:
        if self._sink is not None and self._sink_owned:
            self._sink.close()
        self._sink = None
        self._sink_owned = False

    def flush_to(self, path: str) -> int:
        """Write the currently retained records to ``path``; returns count."""
        with open(path, "w") as fh:
            for record in self._ring:
                fh.write(record.to_json() + "\n")
        return len(self._ring)


def read_jsonl(path: str) -> List[TraceRecord]:
    """Load a JSONL trace file back into records (round-trip tested)."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(TraceRecord.from_json(line))
    return records

"""Wall-clock scoped timers for profiling the event-loop hot path.

Everything else in the reproduction runs on simulated time; this is the
one sanctioned use of the wall clock, for answering "how many simulated
events per wall-second does this machine execute" (the
``benchmarks/test_perf_eventloop.py`` baseline). Timer results may feed a
:class:`~repro.telemetry.metrics.Histogram`, but never a metric that a
paper figure reads — wall clock must not leak into reported physics.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.telemetry.metrics import Histogram


class ScopedTimer:
    """Context manager measuring elapsed wall-clock time.

    Usage::

        with ScopedTimer("drain") as t:
            sim.run_until_idle()
        print(t.elapsed_s, t.rate(sim.events_executed))

    Pass ``histogram=`` to record the elapsed microseconds on exit, e.g.
    for repeated-section profiling.
    """

    __slots__ = ("name", "histogram", "_start", "elapsed_s")

    def __init__(self, name: str = "", histogram: Optional[Histogram] = None) -> None:
        self.name = name
        self.histogram = histogram
        self._start: Optional[float] = None
        self.elapsed_s = 0.0

    def __enter__(self) -> "ScopedTimer":
        self._start = time.perf_counter()  # repro: noqa[RD201] -- this module IS the sanctioned wall-clock profiler (events/wall-second); results never feed figure metrics
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def stop(self) -> float:
        """Freeze the timer (idempotent); returns elapsed seconds."""
        if self._start is not None:
            self.elapsed_s = time.perf_counter() - self._start  # repro: noqa[RD201] -- wall-clock profiler by design; see module docstring
            self._start = None
            if self.histogram is not None:
                self.histogram.observe(self.elapsed_us)
        return self.elapsed_s

    @property
    def elapsed_us(self) -> float:
        return self.elapsed_s * 1e6

    def rate(self, count: float) -> float:
        """``count`` per wall-second (0 if the scope took no measurable time)."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return count / self.elapsed_s

"""Causal packet-lifecycle spans reconstructed from the trace stream.

Every packet that touches a wire (and every injected/generated packet)
carries a run-unique correlation id — ``meta["uid"]``, allocated by
:meth:`repro.net.simulator.Simulator.new_uid` in event-execution order —
and every derived packet records its ancestor in ``meta["parent_uid"]``:
mirror copies, wire duplicates, retransmissions, state-store replies,
chain updates, and reinjected piggybacked outputs all point back at the
packet that caused them. The trace records emitted along the way carry
those ids, so the full causal tree of a packet's lifecycle can be
rebuilt offline from the trace ring or a JSONL sink.

A :class:`PacketSpan` is everything one uid did: its wire hops, its
protocol events, its children, and whether it terminated. The wire-level
bookkeeping is per *hop*: each ``packet.send`` (or ``packet.dup``, the
duplicate's first wire contact) must be matched by exactly one
``packet.deliver`` or ``packet.drop`` on that hop. A span whose origin
events outnumber its terminals is *unterminated* (still in flight, or
the run ended mid-wire); more terminals than origins is *orphaned* and
is the signature of ring truncation (the send fell off the front of the
ring — re-run with a JSONL sink, which never truncates).

Spans with no wire events at all are *internal*: packets consumed inside
a switch (reinjected piggybacks, pktgen output) that exist only as the
``parent`` of other spans. They are materialized as placeholders so the
causal tree stays connected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.telemetry import trace as tt
from repro.telemetry.trace import TraceRecord, read_jsonl

#: Trace types whose ``uid`` field marks a span's first wire contact.
ORIGIN_TYPES = frozenset({tt.PACKET_SEND, tt.PACKET_DUP})
#: Trace types whose ``uid`` field terminates one wire hop.
TERMINAL_TYPES = frozenset({tt.PACKET_DELIVER, tt.PACKET_DROP})
#: All trace types that reference a span by ``uid``.
SPAN_TYPES = ORIGIN_TYPES | TERMINAL_TYPES | frozenset(
    {tt.PACKET_REORDER, tt.RP_REQUEST, tt.RP_ACK, tt.RETRANSMIT}
)


@dataclass
class PacketSpan:
    """One packet's lifecycle: all trace records sharing a ``uid``."""

    uid: int
    #: The span this one descends from (mirror source, duplicated frame,
    #: superseded request copy, request that caused a reply, ...).
    parent: Optional[int] = None
    #: ``app`` / ``request`` / ``response`` / ``chain`` from the wire
    #: records, a protocol verb (``lease_new``, ``write``, ...) when an
    #: ``rp.request`` names it, or ``internal`` for placeholder spans.
    kind: str = "internal"
    flow: Optional[str] = None
    events: List[TraceRecord] = field(default_factory=list)
    children: List[int] = field(default_factory=list)
    #: Uid of the retransmission that replaced this request copy, if any.
    superseded_by: Optional[int] = None
    origins: int = 0
    terminals: int = 0
    delivers: int = 0
    drops: int = 0

    @property
    def first_ts(self) -> Optional[float]:
        return self.events[0].ts if self.events else None

    @property
    def last_ts(self) -> Optional[float]:
        return self.events[-1].ts if self.events else None

    @property
    def status(self) -> str:
        """``delivered`` / ``dropped`` / ``internal`` / ``in_flight``.

        Wire status of the span's *last* hop; an ``internal`` span never
        touched a wire (it lives inside a switch).
        """
        if self.origins == 0 and self.terminals == 0:
            return "internal"
        if self.origins > self.terminals:
            return "in_flight"
        for record in reversed(self.events):
            if record.type == tt.PACKET_DELIVER:
                return "delivered"
            if record.type == tt.PACKET_DROP:
                return "dropped"
        return "in_flight"


@dataclass
class CompletenessReport:
    """Did every wire send reach a terminal? (``verify()``'s answer.)"""

    spans: int
    origin_events: int
    terminal_events: int
    #: Uids with more origins than terminals (in flight at end of trace).
    unterminated: List[int]
    #: Uids with more terminals than origins (ring-truncation signature).
    orphaned: List[int]

    @property
    def ok(self) -> bool:
        return not self.unterminated and not self.orphaned

    def summary(self) -> str:
        verdict = "complete" if self.ok else "INCOMPLETE"
        return (
            f"{self.spans} spans, {self.origin_events} sends, "
            f"{self.terminal_events} terminals: {verdict}"
            f" ({len(self.unterminated)} unterminated,"
            f" {len(self.orphaned)} orphaned)"
        )


class SpanBuilder:
    """Reconstruct :class:`PacketSpan` trees from trace records.

    Records must be in emission order (the ring and JSONL sinks both
    preserve it); the builder is a single deterministic pass, so the same
    trace stream always yields the same spans.
    """

    def __init__(self, records: Iterable[TraceRecord]) -> None:
        self.records: List[TraceRecord] = list(records)
        self.spans: Dict[int, PacketSpan] = {}
        self._build()

    @classmethod
    def from_tracer(cls, tracer) -> "SpanBuilder":
        return cls(tracer.tail())

    @classmethod
    def from_jsonl(cls, path: str) -> "SpanBuilder":
        return cls(read_jsonl(path))

    # -- construction ----------------------------------------------------------

    def _span(self, uid: int) -> PacketSpan:
        span = self.spans.get(uid)
        if span is None:
            span = self.spans[uid] = PacketSpan(uid=uid)
        return span

    def _build(self) -> None:
        for record in self.records:
            if record.type not in SPAN_TYPES:
                continue
            uid = int(record.fields.get("uid", 0))
            if uid <= 0:
                continue
            span = self._span(uid)
            span.events.append(record)
            fields = record.fields
            if record.type in ORIGIN_TYPES:
                span.origins += 1
            elif record.type == tt.PACKET_DELIVER:
                span.terminals += 1
                span.delivers += 1
            elif record.type == tt.PACKET_DROP:
                span.terminals += 1
                span.drops += 1
            if record.type == tt.PACKET_SEND and span.kind in (
                "internal", "app"
            ):
                span.kind = str(fields.get("kind", "app"))
            elif record.type == tt.RP_REQUEST:
                # The protocol verb is more specific than the wire kind.
                span.kind = str(fields.get("kind", span.kind))
            if span.flow is None and "flow" in fields:
                span.flow = str(fields["flow"])
            parent = fields.get("parent")
            if parent is not None and span.parent is None:
                span.parent = int(parent)
            if record.type == tt.RETRANSMIT:
                old = fields.get("parent")
                if old is not None:
                    self._span(int(old)).superseded_by = uid
        # Materialize placeholder spans for parents that left no records of
        # their own (packets consumed in-switch), then wire up children.
        for span in list(self.spans.values()):
            if span.parent is not None:
                self._span(span.parent)
        for uid in sorted(self.spans):
            span = self.spans[uid]
            if span.parent is not None:
                self.spans[span.parent].children.append(uid)

    # -- queries ---------------------------------------------------------------

    def verify(self) -> CompletenessReport:
        """Check that every wire origin reached a terminal event."""
        unterminated: List[int] = []
        orphaned: List[int] = []
        origin_events = terminal_events = 0
        for uid in sorted(self.spans):
            span = self.spans[uid]
            origin_events += span.origins
            terminal_events += span.terminals
            if span.origins > span.terminals:
                unterminated.append(uid)
            elif span.terminals > span.origins:
                orphaned.append(uid)
        return CompletenessReport(
            spans=len(self.spans),
            origin_events=origin_events,
            terminal_events=terminal_events,
            unterminated=unterminated,
            orphaned=orphaned,
        )

    def lifecycle(self, uid: int) -> str:
        """The :attr:`PacketSpan.status` of one span."""
        return self.spans[uid].status

    def roots(self) -> List[PacketSpan]:
        """Spans with no parent, in uid order."""
        return [self.spans[u] for u in sorted(self.spans)
                if self.spans[u].parent is None]

    def flow_spans(self, flow: str) -> List[PacketSpan]:
        """Transitive causal closure of every span tagged with ``flow``.

        Seeds are spans whose wire or protocol records named the flow;
        the closure walks parent and child edges both ways, so protocol
        packets (requests, replies, chain updates) that never carry the
        application 5-tuple are still pulled into the flow's timeline.
        """
        seeds = [u for u in sorted(self.spans)
                 if self.spans[u].flow == flow]
        seen = set()
        stack = list(seeds)
        while stack:
            uid = stack.pop()
            if uid in seen:
                continue
            seen.add(uid)
            span = self.spans[uid]
            if span.parent is not None:
                stack.append(span.parent)
            stack.extend(span.children)
            if span.superseded_by is not None:
                stack.append(span.superseded_by)
        return [self.spans[u] for u in sorted(seen)]

    def flow_events(self, flow: str) -> List[TraceRecord]:
        """All events of :meth:`flow_spans`, in original emission order."""
        member = {span.uid for span in self.flow_spans(flow)}
        return [
            r for r in self.records
            if r.type in SPAN_TYPES and int(r.fields.get("uid", 0)) in member
        ]

    def flows(self) -> List[str]:
        """Every flow tag seen, in first-seen order."""
        out: List[str] = []
        seen = set()
        for record in self.records:
            flow = record.fields.get("flow")
            if flow is not None and flow not in seen:
                seen.add(flow)
                out.append(str(flow))
        return out

"""Chrome trace-event (Perfetto) export of the span stream.

:func:`export_chrome_trace` turns trace records into the JSON object
format consumed by ``ui.perfetto.dev`` and ``chrome://tracing``: wire
hops become ``"X"`` complete events (one slice per link crossing, from
``packet.send`` to the hop's ``packet.deliver``/``packet.drop``),
protocol and fault activity become ``"i"`` instants, and ``"M"``
metadata events name the synthetic processes and threads:

=====  ==========  =====================================================
pid    process     threads
=====  ==========  =====================================================
1      network     one per link *direction*, in first-seen order
2      redplane    one per switch (requests, acks, leases, retransmits)
3      store       one per store node (failover, chain repair)
4      chaos       "faults" (all inject/clear instants) and "health"
=====  ==========  =====================================================

Timestamps pass through natively: the trace-event ``ts``/``dur`` unit
is microseconds, exactly the simulator's clock. Everything is derived
from the deterministic record stream with first-seen id allocation, so
the exported document — serialized with sorted keys — is byte-identical
across same-seed runs.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.telemetry import trace as tt
from repro.telemetry.trace import TraceRecord

PID_NETWORK = 1
PID_REDPLANE = 2
PID_STORE = 3
PID_CHAOS = 4

_PROCESS_NAMES = {
    PID_NETWORK: "network",
    PID_REDPLANE: "redplane",
    PID_STORE: "store",
    PID_CHAOS: "chaos",
}

#: Instant-event placement: trace type -> (pid, field naming the thread,
#: fallback thread name).
_INSTANT_HOMES: Dict[str, Tuple[int, str, str]] = {
    tt.RP_REQUEST: (PID_REDPLANE, "switch", "engine"),
    tt.RP_ACK: (PID_REDPLANE, "switch", "engine"),
    tt.LEASE_REQUEST: (PID_REDPLANE, "switch", "engine"),
    tt.LEASE_GRANT: (PID_REDPLANE, "switch", "engine"),
    tt.LEASE_RENEW: (PID_REDPLANE, "switch", "engine"),
    tt.LEASE_EXPIRY: (PID_REDPLANE, "switch", "engine"),
    tt.RETRANSMIT: (PID_REDPLANE, "switch", "engine"),
    tt.SNAPSHOT: (PID_REDPLANE, "switch", "engine"),
    tt.PACKET_DUP: (PID_NETWORK, "dir", "wire"),
    tt.PACKET_REORDER: (PID_NETWORK, "dir", "wire"),
    tt.FAILOVER: (PID_STORE, "evicted", "coordinator"),
    tt.CHAIN_REPAIR: (PID_STORE, "node", "chain"),
}

#: Instants pinned to one named track regardless of record fields:
#: trace type -> (pid, thread name). All fault injections and clears
#: land on a single "faults" track (the target stays in ``args``), so
#: the chaos timeline reads as one lane instead of one lane per target;
#: health detections get their own track beside it.
_FIXED_TRACKS: Dict[str, Tuple[int, str]] = {
    tt.FAULT_INJECT: (PID_CHAOS, "faults"),
    tt.FAULT_CLEAR: (PID_CHAOS, "faults"),
    tt.HEALTH_RESEND_STORM: (PID_CHAOS, "health"),
    tt.HEALTH_QUEUE_GROWTH: (PID_CHAOS, "health"),
    tt.HEALTH_SLO_BURN: (PID_CHAOS, "health"),
    tt.HEALTH_WAL_STALL: (PID_CHAOS, "health"),
}


class _ThreadTable:
    """First-seen (pid, thread-name) -> tid allocation."""

    def __init__(self) -> None:
        self._tids: Dict[Tuple[int, str], int] = {}
        self._next: Dict[int, int] = {}

    def tid(self, pid: int, name: str) -> int:
        key = (pid, name)
        tid = self._tids.get(key)
        if tid is None:
            tid = self._next.get(pid, 1)
            self._next[pid] = tid + 1
            self._tids[key] = tid
        return tid

    def metadata(self) -> List[Dict[str, Any]]:
        events: List[Dict[str, Any]] = []
        for pid in sorted(_PROCESS_NAMES):
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": _PROCESS_NAMES[pid]},
            })
        for (pid, name), tid in sorted(
            self._tids.items(), key=lambda item: (item[0][0], item[1])
        ):
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": name},
            })
        return events


def export_chrome_trace(
    records: Iterable[TraceRecord], flow: Optional[str] = None
) -> Dict[str, Any]:
    """Build a Chrome trace-event document from trace records.

    ``flow`` restricts the export to one flow's causal closure (see
    :meth:`repro.telemetry.spans.SpanBuilder.flow_spans`) plus the
    global store/chaos instants, which have no flow affiliation.
    """
    records = list(records)
    member_uids: Optional[set] = None
    if flow is not None:
        from repro.telemetry.spans import SpanBuilder

        member_uids = {
            span.uid for span in SpanBuilder(records).flow_spans(flow)
        }
    threads = _ThreadTable()
    events: List[Dict[str, Any]] = []
    #: Open wire hop per uid: (send_ts, tid, fields).
    open_hops: Dict[int, Tuple[float, int, Dict[str, Any]]] = {}

    for record in records:
        fields = record.fields
        uid = int(fields.get("uid", 0))
        if member_uids is not None and uid and uid not in member_uids:
            continue
        if record.type == tt.PACKET_SEND:
            tid = threads.tid(PID_NETWORK, str(fields.get("dir", "wire")))
            open_hops[uid] = (record.ts, tid, fields)
        elif record.type in (tt.PACKET_DELIVER, tt.PACKET_DROP):
            hop = open_hops.pop(uid, None)
            if hop is None:
                continue
            send_ts, tid, send_fields = hop
            args: Dict[str, Any] = {
                "uid": uid,
                "bytes": send_fields.get("bytes", 0),
            }
            if "flow" in send_fields:
                args["flow"] = send_fields["flow"]
            if "parent" in send_fields:
                args["parent"] = send_fields["parent"]
            if record.type == tt.PACKET_DROP:
                args["dropped"] = fields.get("reason", "?")
            else:
                args["node"] = fields.get("node", "?")
            events.append({
                "name": "{} {}".format(
                    send_fields.get("kind", "app"),
                    send_fields.get("link", "?"),
                ),
                "ph": "X",
                "ts": send_ts,
                "dur": record.ts - send_ts,
                "pid": PID_NETWORK,
                "tid": tid,
                "args": args,
            })
        elif record.type in _INSTANT_HOMES or record.type in _FIXED_TRACKS:
            fixed = _FIXED_TRACKS.get(record.type)
            if fixed is not None:
                pid, thread_name = fixed
            else:
                pid, thread_field, fallback = _INSTANT_HOMES[record.type]
                thread_name = str(fields.get(thread_field, fallback))
            tid = threads.tid(pid, thread_name)
            name = record.type
            if fixed is not None and "target" in fields:
                # "fault.inject agg1" reads better on a shared track
                # than a bare type with the target buried in args.
                name = f"{record.type} {fields['target']}"
            events.append({
                "name": name,
                "ph": "i",
                "ts": record.ts,
                "pid": pid,
                "tid": tid,
                "s": "t",
                "args": dict(fields),
            })

    # A hop left open means the run ended mid-wire; surface it rather
    # than dropping it silently.
    for uid, (send_ts, tid, send_fields) in sorted(open_hops.items()):
        events.append({
            "name": "in-flight {}".format(send_fields.get("link", "?")),
            "ph": "i",
            "ts": send_ts,
            "pid": PID_NETWORK,
            "tid": tid,
            "s": "t",
            "args": {"uid": uid},
        })

    return {"traceEvents": threads.metadata() + events}


def validate_chrome_trace(doc: Dict[str, Any]) -> Dict[str, int]:
    """Schema-check a trace-event document; raises ``ValueError``.

    Returns per-phase event counts on success (what the CI smoke job
    prints).
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("document must be a dict with 'traceEvents'")
    trace_events = doc["traceEvents"]
    if not isinstance(trace_events, list):
        raise ValueError("'traceEvents' must be a list")
    counts: Dict[str, int] = {}
    for i, event in enumerate(trace_events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: not an object")
        ph = event.get("ph")
        if ph not in ("X", "i", "M"):
            raise ValueError(f"{where}: unsupported ph {ph!r}")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"{where}: missing name")
        for id_field in ("pid", "tid"):
            if not isinstance(event.get(id_field), int):
                raise ValueError(f"{where}: {id_field} must be an int")
        if "args" in event and not isinstance(event["args"], dict):
            raise ValueError(f"{where}: args must be an object")
        if ph in ("X", "i"):
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ValueError(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where}: bad dur {dur!r}")
        if ph == "i" and event.get("s") not in ("g", "p", "t"):
            raise ValueError(f"{where}: instant scope must be g/p/t")
        counts[ph] = counts.get(ph, 0) + 1
    return counts


def dump_chrome_trace(doc: Dict[str, Any]) -> str:
    """Canonical serialization: byte-identical for identical documents."""
    return json.dumps(doc, sort_keys=True, indent=1) + "\n"

"""Unified observability: metrics, traces, and wall-clock timers.

Every measurement the reproduction reports — the Fig 8-15 and Table 1/2
numbers, the ad-hoc drop counters, the protocol engine's statistics —
flows through this package instead of bespoke per-component attributes:

* :class:`MetricRegistry` — labeled counters, gauges, and streaming
  histograms, owned by the :class:`~repro.net.simulator.Simulator` and
  shared by every component of a run;
* :class:`Tracer` — typed, sim-timestamped trace records (packet drops,
  lease transitions, retransmissions, snapshots, failovers) in a bounded
  ring buffer with an optional JSONL sink;
* :class:`ScopedTimer` — wall-clock timing for profiling the event-loop
  hot path (the only place wall-clock time is allowed).

Components *publish* through the registry/tracer; analysis modules and
the ``python -m repro.tools metrics|trace`` CLI *read* from them. See
docs/TELEMETRY.md for naming conventions and the label schema.
"""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    percentile,
)
from repro.telemetry.perfetto import (
    dump_chrome_trace,
    export_chrome_trace,
    validate_chrome_trace,
)
from repro.telemetry.spans import CompletenessReport, PacketSpan, SpanBuilder
from repro.telemetry.timers import ScopedTimer
from repro.telemetry.trace import TraceRecord, Tracer, read_jsonl

__all__ = [
    "CompletenessReport",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "PacketSpan",
    "ScopedTimer",
    "SpanBuilder",
    "TraceRecord",
    "Tracer",
    "dump_chrome_trace",
    "export_chrome_trace",
    "percentile",
    "read_jsonl",
    "validate_chrome_trace",
]

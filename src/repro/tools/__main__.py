"""Entry point: ``python -m repro.tools``."""

from repro.tools.runner import main

raise SystemExit(main())

"""Experiment runner: regenerate any table or figure from the command line.

Usage::

    python -m repro.tools list              # inventory of experiments
    python -m repro.tools run fig8          # one experiment
    python -m repro.tools run all           # everything (slow)

Each experiment is a pytest benchmark under ``benchmarks/``; the runner
invokes pytest with the right selection so the printed rows land on
stdout. This is the command EXPERIMENTS.md points at for every number it
quotes.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from typing import Dict, List, Optional

#: Experiment id -> (benchmark file, one-line description).
EXPERIMENTS: Dict[str, tuple] = {
    "fig8": ("test_fig08_nat_latency.py",
             "RTT CDF: NAT under six implementations"),
    "fig9": ("test_fig09_app_latency.py",
             "RTT per RedPlane-enabled application"),
    "fig10": ("test_fig10_bandwidth.py",
              "replication bandwidth share per application"),
    "fig11": ("test_fig11_snapshot_bw.py",
              "snapshot bandwidth vs frequency and sketch count"),
    "fig12": ("test_fig12_throughput.py",
              "data-plane throughput with and without RedPlane"),
    "fig13": ("test_fig13_kv_update_ratio.py",
              "KV-store throughput vs update ratio and store count"),
    "fig14": ("test_fig14_failover.py",
              "TCP goodput during switch failover and recovery"),
    "fig15": ("test_fig15_buffer.py",
              "packet-buffer occupancy from request buffering"),
    "table1": ("test_table1_failure_impact.py",
               "failure impact per application, with and without RedPlane"),
    "table2": ("test_table2_resources.py",
               "ASIC resources used by RedPlane"),
    "appc": ("test_appc_model_check.py",
             "model checking the protocol spec"),
    "ablation-lease": ("test_ablation_lease.py",
                       "lease period vs recovery time"),
    "ablation-retransmit": ("test_ablation_retransmit.py",
                            "retransmission timeout under loss"),
    "ablation-piggyback": ("test_ablation_piggyback.py",
                           "piggybacking vs on-switch output buffering"),
}


def benchmarks_dir() -> str:
    """Locate the benchmarks directory relative to the repository root."""
    here = os.path.dirname(os.path.abspath(__file__))
    for candidate in (
        os.path.join(here, "..", "..", "..", "benchmarks"),
        os.path.join(os.getcwd(), "benchmarks"),
    ):
        path = os.path.normpath(candidate)
        if os.path.isdir(path):
            return path
    raise FileNotFoundError(
        "cannot locate the benchmarks/ directory; run from the repo root"
    )


def run_experiment(name: str, extra_args: Optional[List[str]] = None) -> int:
    """Run one experiment (or 'all'); returns the pytest exit code."""
    bench_dir = benchmarks_dir()
    if name == "all":
        targets = [os.path.join(bench_dir, f) for f, _ in EXPERIMENTS.values()]
    else:
        if name not in EXPERIMENTS:
            raise KeyError(
                f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
            )
        targets = [os.path.join(bench_dir, EXPERIMENTS[name][0])]
    cmd = [sys.executable, "-m", "pytest", *targets,
           "--benchmark-only", "-q", "-s"]
    cmd.extend(extra_args or [])
    return subprocess.call(cmd)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="show the experiment inventory")
    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="fig8..fig15, table1, table2, "
                                               "appc, ablation-*, or all")
    args = parser.parse_args(argv)

    if args.command == "list":
        width = max(len(k) for k in EXPERIMENTS)
        for key, (_file, description) in EXPERIMENTS.items():
            print(f"{key.ljust(width)}  {description}")
        return 0
    return run_experiment(args.experiment)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Experiment runner: regenerate any table or figure from the command line.

Usage::

    python -m repro.tools list              # inventory of experiments
    python -m repro.tools run fig8          # one experiment
    python -m repro.tools run all           # everything (slow)
    python -m repro.tools bench fig8        # rerun fig8, diff vs committed
    python -m repro.tools metrics           # telemetry snapshot of a demo run
    python -m repro.tools trace --tail 20   # trace tail of a demo run
    python -m repro.tools spans             # span completeness + attribution
    python -m repro.tools timeline --out t.json --validate  # Perfetto export
    python -m repro.tools timeline <flow>   # one flow's causal timeline
    python -m repro.tools chaos --list      # chaos campaign inventory
    python -m repro.tools chaos gray_link   # one chaos campaign + verdict
    python -m repro.tools fastpath          # fast-path cache statistics
    python -m repro.tools fastpath --diff   # on/off A/B identity + speedup
    python -m repro.tools profile gray_link --flame f.txt  # self-profiler
    python -m repro.tools watch hb.ndjson -f  # live campaign health console
    python -m repro.tools watch hb/heartbeat.*.ndjson -f  # merged shard view
    python -m repro.tools bench --record --check  # perf-trajectory gate
    python -m repro.tools shard plan nat    # shard plan + worker assignment
    python -m repro.tools shard run nat_steady --workers 4  # sharded run
    python -m repro.tools shard diff nat_quickstart --workers 2  # identity
    python -m repro.tools shard bench --workers-list 1,2,4,8  # scaling curve

Each experiment is a pytest benchmark under ``benchmarks/``; the runner
invokes pytest with the right selection so the printed rows land on
stdout. This is the command EXPERIMENTS.md points at for every number it
quotes.

``metrics`` and ``trace`` run the quickstart scenario (SyncCounterApp on
the paper testbed, one flow, a switch failure and lease migration)
in-process and read the resulting :class:`~repro.telemetry.MetricRegistry`
/ :class:`~repro.telemetry.Tracer` — a one-command look at what the
telemetry spine records.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import Dict, List, Optional

#: Experiment id -> (benchmark file, one-line description).
EXPERIMENTS: Dict[str, tuple] = {
    "fig8": ("test_fig08_nat_latency.py",
             "RTT CDF: NAT under six implementations"),
    "fig9": ("test_fig09_app_latency.py",
             "RTT per RedPlane-enabled application"),
    "fig10": ("test_fig10_bandwidth.py",
              "replication bandwidth share per application"),
    "fig11": ("test_fig11_snapshot_bw.py",
              "snapshot bandwidth vs frequency and sketch count"),
    "fig12": ("test_fig12_throughput.py",
              "data-plane throughput with and without RedPlane"),
    "fig13": ("test_fig13_kv_update_ratio.py",
              "KV-store throughput vs update ratio and store count"),
    "fig14": ("test_fig14_failover.py",
              "TCP goodput during switch failover and recovery"),
    "fig15": ("test_fig15_buffer.py",
              "packet-buffer occupancy from request buffering"),
    "table1": ("test_table1_failure_impact.py",
               "failure impact per application, with and without RedPlane"),
    "table2": ("test_table2_resources.py",
               "ASIC resources used by RedPlane"),
    "appc": ("test_appc_model_check.py",
             "model checking the protocol spec"),
    "ablation-lease": ("test_ablation_lease.py",
                       "lease period vs recovery time"),
    "ablation-retransmit": ("test_ablation_retransmit.py",
                            "retransmission timeout under loss"),
    "ablation-piggyback": ("test_ablation_piggyback.py",
                           "piggybacking vs on-switch output buffering"),
    "netchain": ("test_netchain_store.py",
                 "RedPlane vs NetChain in-switch store: write-ack latency "
                 "and crash survival"),
}


def benchmarks_dir() -> str:
    """Locate the benchmarks directory relative to the repository root."""
    here = os.path.dirname(os.path.abspath(__file__))
    for candidate in (
        os.path.join(here, "..", "..", "..", "benchmarks"),
        os.path.join(os.getcwd(), "benchmarks"),
    ):
        path = os.path.normpath(candidate)
        if os.path.isdir(path):
            return path
    raise FileNotFoundError(
        "cannot locate the benchmarks/ directory; run from the repo root"
    )


def run_experiment(name: str, extra_args: Optional[List[str]] = None) -> int:
    """Run one experiment (or 'all'); returns the pytest exit code."""
    bench_dir = benchmarks_dir()
    if name == "all":
        targets = [os.path.join(bench_dir, f) for f, _ in EXPERIMENTS.values()]
    else:
        if name not in EXPERIMENTS:
            raise KeyError(
                f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
            )
        targets = [os.path.join(bench_dir, EXPERIMENTS[name][0])]
    cmd = [sys.executable, "-m", "pytest", *targets,
           "--benchmark-only", "-q", "-s"]
    cmd.extend(extra_args or [])
    return subprocess.call(cmd)


def _parse_sections(text: str) -> Dict[str, List[str]]:
    """Split ``bench_results.txt``-style output into titled sections.

    A section is a ``print_header`` banner (a bar line, the title, a bar
    line) followed by everything up to the next banner. Returns
    title -> content lines (trailing blanks stripped).
    """
    lines = text.splitlines()
    sections: Dict[str, List[str]] = {}
    title: Optional[str] = None
    content: List[str] = []

    def flush() -> None:
        if title is not None:
            while content and not content[-1].strip():
                content.pop()
            sections[title] = list(content)

    i = 0
    while i < len(lines):
        line = lines[i]
        if (line and set(line) == {"="} and i + 2 < len(lines)
                and set(lines[i + 2]) == {"="}):
            flush()
            title = lines[i + 1]
            content = []
            i += 3
            continue
        if title is not None:
            content.append(line)
        i += 1
    flush()
    return sections


def run_bench_diff(name: str) -> int:
    """Rerun one experiment and diff its tables against the committed ones.

    The committed reference is ``bench_results.txt`` at the repository
    root — the machine-readable companion of EXPERIMENTS.md (every number
    EXPERIMENTS.md quotes comes from these tables). The experiment is
    rerun into a scratch file and each section it produces must match the
    committed section byte for byte; any drift prints a diff and exits
    nonzero. This is the guard that a change to the simulator did not
    silently move a published number.
    """
    import difflib
    import tempfile

    bench_dir = benchmarks_dir()
    committed_path = os.path.normpath(
        os.path.join(bench_dir, "..", "bench_results.txt"))
    try:
        with open(committed_path) as fh:
            committed = _parse_sections(fh.read())
    except OSError:
        print(f"no committed reference at {committed_path}", file=sys.stderr)
        return 2
    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
        )
    fd, scratch = tempfile.mkstemp(suffix=".txt", prefix="repro-bench-")
    os.close(fd)
    try:
        env = dict(os.environ, REPRO_BENCH_RESULTS=scratch)
        cmd = [sys.executable, "-m", "pytest",
               os.path.join(bench_dir, EXPERIMENTS[name][0]),
               "--benchmark-only", "-q"]
        code = subprocess.call(cmd, env=env,
                               stdout=subprocess.DEVNULL)
        if code != 0:
            print(f"benchmark {name!r} itself failed (exit {code})",
                  file=sys.stderr)
            return code
        with open(scratch) as fh:
            fresh = _parse_sections(fh.read())
    finally:
        os.unlink(scratch)
    if not fresh:
        print(f"benchmark {name!r} emitted no tables", file=sys.stderr)
        return 2
    drift = False
    for title, lines in fresh.items():
        if title not in committed:
            print(f"DRIFT: section {title!r} is not in the committed "
                  f"reference", file=sys.stderr)
            drift = True
            continue
        if lines != committed[title]:
            drift = True
            print(f"DRIFT in {title!r}:")
            sys.stdout.writelines(difflib.unified_diff(
                committed[title], lines, fromfile="committed",
                tofile="regenerated", lineterm=""))
            print()
        else:
            print(f"ok: {title}")
    if drift:
        print("\nbench diff: DRIFT — regenerated tables differ from the "
              "committed bench_results.txt/EXPERIMENTS.md values")
        return 1
    print("\nbench diff: clean — regenerated tables match the committed "
          "values")
    return 0


def run_fastpath(flows: int, packets: int, seed: int, scheduler: str,
                 diff: bool, as_json: bool) -> int:
    """Fast-path statistics, or an on/off A/B identity + speedup check."""
    from repro.fastpath.bench import run_ab, run_scenario

    if diff:
        result = run_ab(flows=flows, packets_per_flow=packets, seed=seed,
                        scheduler=scheduler)
        if as_json:
            slim = dict(result)
            for key in ("off", "on"):
                slim[key] = {k: v for k, v in result[key].items()
                             if k not in ("metrics", "trace_digest")}
            print(json.dumps(slim, indent=2, sort_keys=True))
        else:
            off, on = result["off"], result["on"]
            print(f"reference : {off['packets_per_s']:>10.1f} pkt/s "
                  f"({off['packets']} packets, {off['events']} events)")
            print(f"fast path : {on['packets_per_s']:>10.1f} pkt/s "
                  f"({on['packets']} packets, {on['events']} events)")
            print(f"speedup   : {result['speedup_vs_committed']:.2f}x vs "
                  f"committed baseline ({result['baseline_pps']:.1f} "
                  f"pkt/s), {result['speedup_same_scenario']:.2f}x "
                  f"same-scenario")
            for axis, same in result["identity"].items():
                print(f"identity  : {axis:<16s} "
                      f"{'identical' if same else 'DIVERGED'}")
        if not result["identical"]:
            print("fast path DIVERGED from the reference path",
                  file=sys.stderr)
            return 1
        return 0
    result = run_scenario(flows=flows, packets_per_flow=packets, seed=seed,
                          fastpath=True, scheduler=scheduler)
    stats = result["fastpath_stats"]
    if as_json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    flow = stats["flow_cache"]
    route = stats["route_cache"]
    total = flow["hits"] + flow["misses"]
    print(f"throughput : {result['packets_per_s']:.1f} pkt/s "
          f"({result['packets']} packets, {result['events']} events)")
    print(f"flow cache : {flow['hits']} hits / {flow['misses']} misses "
          f"({100.0 * flow['hits'] / total if total else 0.0:.1f}% hit), "
          f"{flow['entries']} entries")
    for switch, per in sorted(flow["per_switch"].items()):
        print(f"  {switch:<9s}: {per['hits']} hits / {per['misses']} "
              f"misses, {per['entries']} entries")
    print(f"route cache: {route['hits']} hits / {route['misses']} misses "
          f"/ {route['flushes']} flushes")
    print(f"lanes      : {stats['lanes']['count']} compiled, "
          f"{stats['lanes']['batched_deliveries']} batched deliveries")
    print("invalidations: " + ", ".join(
        f"{scope}={count}" for scope, count in
        sorted(stats["invalidations"].items())) )
    return 0


def demo_run(seed: int = 7, packets: int = 10, fail_owner: bool = True,
             trace_path: Optional[str] = None, profile: bool = False,
             heartbeat_path: Optional[str] = None):
    """Run the quickstart scenario in-process; returns the simulator.

    Deploys :class:`~repro.apps.counter.SyncCounterApp` on the paper
    testbed, pushes one flow through it, optionally fails the owning
    switch (exercising lease migration and store traffic), then asks each
    engine to publish its resource gauges — so the registry ends up with
    a representative population of counters, gauges, and histograms.
    ``trace_path`` streams the full record stream to a JSONL sink (the
    ring can truncate; the sink cannot).

    ``profile``/``heartbeat_path`` attach the :mod:`repro.observe` layer
    for the run; the bundle stays attached on return (``sim.observe``) so
    the caller can read it — close and detach it when done.
    """
    from repro import Simulator, deploy
    from repro.apps.counter import SyncCounterApp
    from repro.net.packet import Packet

    sim = Simulator(seed=seed)
    if trace_path is not None:
        sim.tracer.open_sink(trace_path)
    dep = deploy(sim, SyncCounterApp)
    if profile or heartbeat_path:
        from repro.observe import attach

        attach(sim, profile=profile, heartbeat_path=heartbeat_path,
               links=list(dep.bed.topology.links))
    sender = dep.bed.externals[0]
    receiver = dep.bed.servers[0]

    def send_packet() -> None:
        sender.send(Packet.udp(sender.ip, receiver.ip, 5555, 7777))

    for i in range(packets):
        sim.schedule(i * 200.0, send_packet)
    sim.run_until_idle()

    if fail_owner:
        owner = max(dep.engines.values(),
                    key=lambda e: e.stats["app_packets"])
        dep.bed.topology.fail_node(owner.switch)
        sim.run(until=sim.now + 400_000)
        for i in range(packets):
            sim.schedule(i * 200.0, send_packet)
        sim.run_until_idle()

    for engine in dep.engines.values():
        engine.resource_usage()
    if trace_path is not None:
        sim.tracer.close_sink()
    return sim


def _filter_snapshot(snap: Dict[str, Dict[str, object]],
                     pattern: str) -> Dict[str, Dict[str, object]]:
    """Keep metrics whose name (with or without labels) matches the glob."""
    import fnmatch

    def keep(ident: str) -> bool:
        return (fnmatch.fnmatchcase(ident, pattern)
                or fnmatch.fnmatchcase(ident.split("{", 1)[0], pattern))

    return {section: {k: v for k, v in entries.items() if keep(k)}
            for section, entries in snap.items()}


def show_metrics(seed: int, packets: int, as_json: bool,
                 pattern: Optional[str] = None, fmt: str = "table") -> int:
    import csv

    sim = demo_run(seed=seed, packets=packets)
    snap = sim.metrics.snapshot()
    if pattern:
        snap = _filter_snapshot(snap, pattern)
    if as_json:
        print(json.dumps(snap, indent=2, sort_keys=True))
        return 0
    if fmt == "csv":
        writer = csv.writer(sys.stdout, lineterminator="\n")
        writer.writerow(["section", "metric", "field", "value"])
        for section in ("counters", "gauges", "histograms"):
            for ident, value in snap[section].items():
                if isinstance(value, dict):
                    for field in sorted(value):
                        writer.writerow([section, ident, field,
                                         f"{value[field]:g}"])
                else:
                    writer.writerow([section, ident, "value", f"{value:g}"])
        return 0
    if pattern:
        # Render only the filtered keys: rebuild the sections by hand
        # (MetricRegistry.render reads the live registry).
        lines = []
        for section in ("counters", "gauges", "histograms"):
            entries = snap[section]
            lines.append(f"{section} ({len(entries)}):")
            for ident, value in entries.items():
                if isinstance(value, dict):
                    detail = "  ".join(f"{k}={v:.2f}"
                                       for k, v in value.items())
                    lines.append(f"  {ident}  {detail}")
                else:
                    lines.append(f"  {ident} = {value:g}")
        print("\n".join(lines))
    else:
        print(sim.metrics.render())
    return 0


def show_trace(seed: int, packets: int, tail: int, as_json: bool,
               out: Optional[str], since: Optional[float] = None) -> int:
    sim = demo_run(seed=seed, packets=packets)
    if out:
        written = sim.tracer.flush_to(out)
        print(f"wrote {written} records to {out}", file=sys.stderr)
    emitted = sim.tracer.records_emitted
    retained = len(sim.tracer)
    print(f"# {emitted} records emitted, {retained} retained "
          f"(ring maxlen {sim.tracer.maxlen}); showing last {tail}"
          + (f" at/after t={since:g}us" if since is not None else ""),
          file=sys.stderr)
    dropped = sim.tracer.records_dropped
    if dropped:
        print(f"WARNING: ring truncated {dropped} records; span "
              f"reconstruction over this trace will report orphans — "
              f"use a JSONL sink for complete lifecycles",
              file=sys.stderr)
    records = sim.tracer.tail(len(sim.tracer)) if since is not None \
        else sim.tracer.tail(tail)
    if since is not None:
        records = [r for r in records if r.ts >= since][-tail:]
    for record in records:
        if as_json:
            print(record.to_json())
        else:
            fields = " ".join(f"{k}={v}" for k, v in record.fields.items())
            print(f"{record.ts:14.3f}  {record.type:<16s}  {fields}")
    return 0


def _demo_records(seed: int, packets: int):
    """Quickstart run with a complete (sink-backed) record stream."""
    import tempfile

    from repro.telemetry.trace import read_jsonl

    fd, path = tempfile.mkstemp(suffix=".jsonl", prefix="repro-trace-")
    os.close(fd)
    try:
        sim = demo_run(seed=seed, packets=packets, trace_path=path)
        return sim, read_jsonl(path)
    finally:
        os.unlink(path)


def show_spans(seed: int, packets: int, as_json: bool) -> int:
    """Span completeness + latency attribution over the quickstart run."""
    from repro.analysis.attribution import (
        attribute_acks, flow_table, render_table, verify_sums,
    )
    from repro.telemetry.spans import SpanBuilder

    _sim, records = _demo_records(seed, packets)
    builder = SpanBuilder(records)
    report = builder.verify()
    breakdowns = attribute_acks(records)
    sum_violation = verify_sums(breakdowns)
    status_counts: Dict[str, int] = {}
    for span in builder.spans.values():
        status = span.status
        status_counts[status] = status_counts.get(status, 0) + 1
    ok = report.ok and sum_violation is None
    if as_json:
        print(json.dumps({
            "completeness": {
                "spans": report.spans,
                "origin_events": report.origin_events,
                "terminal_events": report.terminal_events,
                "unterminated": report.unterminated,
                "orphaned": report.orphaned,
                "ok": report.ok,
            },
            "statuses": status_counts,
            "attribution": flow_table(breakdowns),
            "attribution_sums_ok": sum_violation is None,
        }, indent=2, sort_keys=True))
    else:
        print(f"completeness: {report.summary()}")
        print("statuses    : " + ", ".join(
            f"{k}={v}" for k, v in sorted(status_counts.items())))
        if sum_violation is not None:
            print(f"ATTRIBUTION SUM VIOLATION: {sum_violation}")
        print()
        print(render_table(flow_table(breakdowns)))
    return 0 if ok else 1


def show_timeline(flow: Optional[str], seed: int, packets: int,
                  out: Optional[str], validate: bool,
                  list_flows: bool) -> int:
    """Export the quickstart run as a Chrome trace-event (Perfetto) file."""
    from repro.telemetry.perfetto import (
        dump_chrome_trace, export_chrome_trace, validate_chrome_trace,
    )
    from repro.telemetry.spans import SpanBuilder

    _sim, records = _demo_records(seed, packets)
    if list_flows:
        for tag in SpanBuilder(records).flows():
            print(tag)
        return 0
    doc = export_chrome_trace(records, flow=flow)
    if validate:
        counts = validate_chrome_trace(doc)
        print("validated: " + ", ".join(
            f"{counts.get(ph, 0)} {label}" for ph, label in
            (("X", "slices"), ("i", "instants"), ("M", "metadata"))),
            file=sys.stderr)
    serialized = dump_chrome_trace(doc)
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(serialized)
        print(f"wrote {len(doc['traceEvents'])} trace events to {out} "
              f"(open in ui.perfetto.dev)", file=sys.stderr)
    else:
        sys.stdout.write(serialized)
    return 0


def run_chaos(campaign: Optional[str], seed: int, as_json: bool,
              out: Optional[str], check_determinism: bool,
              list_campaigns: bool, trace: Optional[str] = None) -> int:
    """Run one chaos campaign; exit nonzero on FAIL or a verdict mismatch."""
    from repro.chaos import CAMPAIGNS, render_report, run_campaign, \
        verdict_json

    if list_campaigns or campaign is None:
        width = max(len(name) for name in CAMPAIGNS)
        for name, c in CAMPAIGNS.items():
            print(f"{name.ljust(width)}  {c.description}")
        return 0
    report = run_campaign(campaign, seed=seed, trace_path=trace)
    serialized = verdict_json(report)
    if trace:
        print(f"wrote {report['trace']['records_emitted']} trace records "
              f"to {trace}", file=sys.stderr)
    dropped = report["trace"]["records_dropped"]
    if dropped:
        print(f"WARNING: trace ring truncated {dropped} records"
              + ("" if trace else
                 "; pass --trace PATH for the complete stream"),
              file=sys.stderr)
    if check_determinism:
        repeat = verdict_json(run_campaign(campaign, seed=seed))
        if repeat != serialized:
            print(f"NONDETERMINISTIC: two seed={seed} runs of "
                  f"{campaign!r} produced different verdict reports",
                  file=sys.stderr)
            return 2
        print(f"determinism: two seed={seed} runs byte-identical",
              file=sys.stderr)
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(serialized)
        print(f"wrote verdict report to {out}", file=sys.stderr)
    print(serialized if as_json else render_report(report))
    return 0 if report["verdict"] == "PASS" else 1


def run_profile(name: str, seed: int, packets: int, flame: Optional[str],
                heartbeat: Optional[str], as_json: bool,
                top: int = 12) -> int:
    """Profile the quickstart scenario or a chaos campaign.

    Runs with the :mod:`repro.observe` self-profiler attached, prints
    the per-subsystem table and hottest handlers, and optionally writes
    a collapsed-stack flamegraph (``--flame``, Brendan Gregg format —
    feed to flamegraph.pl or speedscope) and a heartbeat NDJSON stream
    (``--heartbeat``, view with ``repro.tools watch``).
    """
    from repro.observe import ObserveOptions

    if name == "quickstart":
        sim = demo_run(seed=seed, packets=packets, profile=True,
                       heartbeat_path=heartbeat)
        bundle = sim.observe
        bundle.profiler.publish(sim.metrics)
        bundle.close()
        sim.detach_observe()
    else:
        from repro.chaos.campaigns import CAMPAIGNS
        from repro.chaos.runner import run_campaign_result

        if name not in CAMPAIGNS:
            known = ", ".join(["quickstart"] + sorted(CAMPAIGNS))
            print(f"unknown profile target {name!r}; known: {known}",
                  file=sys.stderr)
            return 2
        result = run_campaign_result(
            CAMPAIGNS[name], seed=seed,
            observe=ObserveOptions(profile=True,
                                   heartbeat=heartbeat is not None,
                                   heartbeat_path=heartbeat))
        bundle = result.observe
    profiler = bundle.profiler
    if flame:
        profiler.write_flamegraph(flame)
        print(f"wrote {len(profiler.collapsed_stacks())} collapsed stacks "
              f"to {flame}", file=sys.stderr)
    if heartbeat:
        print(f"wrote {len(bundle.heartbeat.snapshots)} heartbeats to "
              f"{heartbeat} (view with: python -m repro.tools watch "
              f"{heartbeat})", file=sys.stderr)
    if as_json:
        print(json.dumps(profiler.to_dict(), indent=2, sort_keys=True))
    else:
        print(profiler.render(top=top))
    return 0


def run_watch(paths: List[str], follow: bool,
              max_lines: Optional[int]) -> int:
    """Tail/render heartbeat NDJSON file(s) (``repro.tools watch``).

    Several files (a sharded campaign's per-worker heartbeats) merge
    into one labeled console."""
    from repro.observe.console import watch

    return watch(paths if len(paths) > 1 else paths[0],
                 follow=follow, max_lines=max_lines)


# -- shard CLI ----------------------------------------------------------------


def _shard_assignment_table(plan: dict, workers: int) -> str:
    """Which worker owns what, for ``repro.tools shard plan``."""
    from repro.shard.plan import shardability, sync_window_us

    lines: List[str] = []
    shardable, reason = shardability(plan)
    lines.append(f"workers: {workers}")
    if shardable:
        fields = ", ".join(plan["partition_key"]["fields"])
        lines.append(f"  flow shards : hash(flow key [{fields}]) % "
                     f"{workers} -> owner worker")
    else:
        lines.append(f"  pinned      : all flows on worker 0 ({reason})")
    for entry in plan["structures"]:
        if shardable and entry["partition_class"] in (
            "flow_local", "flow_hash"
        ):
            where = f"worker of owning flow (0..{workers - 1})"
        else:
            where = "worker 0 (global residue)"
        lines.append(f"  {entry['name']:<28} -> {where}")
    residue = plan["global_residue"]
    if residue:
        lines.append(f"  global residue pinned to worker 0: "
                     f"{', '.join(residue)}")
    lines.append(f"  state store : replicated chain on every worker "
                 f"(shared events run in lockstep)")
    lines.append(f"  sync window : {sync_window_us(plan)} us lookahead "
                 f"(min cross-shard link latency)")
    return "\n".join(lines)


def run_shard_plan(app: str, workers: int, as_json: bool) -> int:
    """``repro.tools shard plan <app>``: assignment table or --json."""
    from repro.shard.plan import PlanError, check_conformance
    from repro.verify.partition_pass import plan_json, render_plan

    try:
        plan = check_conformance(app)
    except PlanError as exc:
        print(f"shard plan: {exc}", file=sys.stderr)
        return 2
    if as_json:
        print(plan_json(plan), end="")
        return 0
    print(render_plan(plan))
    print(_shard_assignment_table(plan, workers))
    return 0


def _merged_summary(merged: dict) -> dict:
    """JSON-safe summary of a merged shard run (drops record objects)."""
    return {k: v for k, v in merged.items()
            if k not in ("trace", "records")}


def run_shard_run(args: "argparse.Namespace") -> int:
    """``repro.tools shard run <scenario> --workers N``."""
    from repro.shard.runner import resolve, run_sharded

    config = resolve(
        args.scenario, args.workers, seed=args.seed,
        fastpath=args.fastpath, capture=not args.no_capture,
        heartbeat_dir=args.heartbeat_dir,
    )
    merged = run_sharded(config, mode=args.mode)
    if args.save:
        os.makedirs(args.save, exist_ok=True)
        path = os.path.join(args.save, "merged.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(_merged_summary(merged), fh, indent=2,
                      sort_keys=True, default=str)
        print(f"merged result -> {path}", file=sys.stderr)
    if args.json:
        print(json.dumps(_merged_summary(merged), indent=2,
                         sort_keys=True, default=str))
        return 0
    print(f"scenario    : {merged['scenario']} (app {merged['app']}, "
          f"seed {merged['seed']})")
    print(f"workers     : {merged['num_shards']} ({merged['mode']}), "
          f"window {merged['window_us']} us, "
          f"lookahead {merged['lookahead_us']} us"
          + (f", PINNED: {merged['pin_reason']}" if merged["pinned"] else ""))
    print(f"events      : {merged['events']:,}")
    print(f"records     : {merged['records_emitted']:,}")
    print(f"flows/shard : {merged['flows_per_shard']}")
    print(f"wall/shard  : "
          + ", ".join(f"{w:.2f}s" for w in merged["wall_s_per_shard"])
          + f" (ghost {merged['wall_s_ghost']:.2f}s)")
    if "trace_digest" in merged:
        print(f"trace digest: {merged['trace_digest']}")
    print(f"rng draws   : {merged['rng_draws']}")
    return 0


def run_shard_diff(args: "argparse.Namespace") -> int:
    """``repro.tools shard diff <scenario>``: A/B vs the reference."""
    from repro.shard.runner import run_identity

    out = run_identity(
        args.scenario, workers=args.workers, mode=args.mode,
        fastpath=args.fastpath,
    )
    report = out["report"]
    width = max(len(k) for k in report)
    for axis, same in report.items():
        print(f"{axis.ljust(width)} : {'identical' if same else 'DIFFERS'}")
    verdict = "IDENTICAL" if out["identical"] else "DIFFERS"
    print(f"{'verdict'.ljust(width)} : {verdict} "
          f"({args.workers} shard(s), {args.mode} mode, vs reference)")
    return 0 if out["identical"] else 1


def run_shard_bench(args: "argparse.Namespace") -> int:
    """``repro.tools shard bench``: the worker scaling curve."""
    from repro.shard import bench as shard_bench

    workers_list = [int(w) for w in args.workers_list.split(",")]
    curve = shard_bench.run_scaling_curve(
        workers_list,
        packets=args.packets or shard_bench.DEFAULT_PACKETS,
        population=args.population or shard_bench.DEFAULT_POPULATION,
        progress=lambda msg: print(msg, file=sys.stderr),
    )
    payload = shard_bench.bench_payload(curve)
    if args.record or args.out:
        path = args.out or shard_bench.BENCH_PATH
        shard_bench.write_bench(path, **payload)
        print(f"recorded -> {path}", file=sys.stderr)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def run_shard_cli(args: "argparse.Namespace") -> int:
    if args.shard_command == "plan":
        return run_shard_plan(args.app, args.workers, args.json)
    if args.shard_command == "run":
        return run_shard_run(args)
    if args.shard_command == "diff":
        return run_shard_diff(args)
    if args.shard_command == "bench":
        return run_shard_bench(args)
    print("shard: give a subcommand (plan/run/diff/bench)", file=sys.stderr)
    return 2


def run_bench_trajectory(record: bool, gate: bool,
                         path: Optional[str]) -> int:
    """``repro.tools bench --record/--check``: the perf-trajectory spine."""
    from repro.observe import trajectory

    report = trajectory.record_and_check(
        path=path or trajectory.DEFAULT_PATH,
        record=record, gate=gate)
    for entry in report["entries"]:
        print(f"measured   : {entry['bench']:<12} "
              f"{entry['throughput']:>10.1f} {entry['unit']} "
              f"(normalized {entry['normalized']:.6f})")
    if gate:
        print(trajectory.render_check(report))
    if record:
        print(f"recorded   : {len(report['entries'])} entries -> "
              f"{path or trajectory.DEFAULT_PATH}", file=sys.stderr)
    return 0 if report["ok"] else 1


def run_fuzz_cli(args: "argparse.Namespace") -> int:
    """Dispatch ``repro.tools fuzz run|self-check|shrink|replay``."""
    from repro.chaos.fuzz import (
        ScheduleSpec,
        mutation_self_check,
        regression_payload,
        replay_regression,
        run_fuzz,
    )
    from repro.chaos.scorecard import Scorecard
    from repro.chaos.shrink import shrink_spec
    from repro.model.witness import ViolationWitness

    def emit(msg: str) -> None:
        print(msg, file=sys.stderr)

    if args.fuzz_command == "run":
        report = run_fuzz(args.seed, args.budget, bug=args.mutation,
                          shrink_budget=args.shrink_budget,
                          shrink_violations=not args.no_shrink, log=emit)
        violations = report["violations"]
        if args.out_dir:
            os.makedirs(args.out_dir, exist_ok=True)
            for entry in violations:
                payload = regression_payload(entry, args.seed, args.mutation)
                path = os.path.join(
                    args.out_dir,
                    f"fuzz-s{args.seed}-i{entry['index']}.json")
                with open(path, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh, indent=1, sort_keys=True)
                    fh.write("\n")
                emit(f"wrote reproducer {path}")
        if args.scorecard:
            with open(args.scorecard, "w", encoding="utf-8") as fh:
                json.dump(report["scorecard"], fh, indent=1, sort_keys=True)
                fh.write("\n")
            emit(f"wrote scorecard {args.scorecard}")
        if args.json:
            print(json.dumps(report, indent=1, sort_keys=True))
        else:
            print(Scorecard.render_dict(report["scorecard"]))
            print(f"{report['schedules_run']} schedules, "
                  f"{len(violations)} violation(s)")
        return 1 if violations else 0

    if args.fuzz_command == "self-check":
        report = mutation_self_check(
            seed=args.seed, budget=args.budget, bug=args.bug,
            shrink_budget=args.shrink_budget,
            max_minimal_faults=args.max_minimal_faults, log=emit)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=1, sort_keys=True)
                fh.write("\n")
            emit(f"wrote self-check report {args.out}")
        if args.json:
            print(json.dumps(report, indent=1, sort_keys=True))
        elif report["ok"]:
            print(f"self-check OK: mutation {report['mutation']!r} found at "
                  f"schedule {report['found_index']} and shrunk to "
                  f"{report['minimal_faults']} fault(s); clean sweep green")
        else:
            print(f"self-check FAILED: {report.get('reason')}")
        return 0 if report["ok"] else 1

    if args.fuzz_command == "shrink":
        with open(args.file, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        spec = ScheduleSpec.from_dict(payload["spec"])
        witness = ViolationWitness.from_dict(payload["witness"])
        bug = payload.get("fuzzer", {}).get("mutation")
        shrunk = shrink_spec(spec, witness, bug=bug, budget=args.budget)
        emit(f"shrunk {len(spec.faults)} -> {len(shrunk.spec.faults)} "
             f"fault(s) in {shrunk.runs_used} oracle runs")
        payload["spec"] = shrunk.spec.to_dict()
        payload["witness"] = shrunk.witness.to_dict()
        out = args.out or args.file
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
        emit(f"wrote {out}")
        for fault in shrunk.spec.faults:
            print(fault.describe())
        return 0

    # replay
    failures = 0
    for path in args.files:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        outcome = replay_regression(payload)
        expect = args.expect
        if expect == "auto":
            # A reproducer minted under a seeded bug documents detection
            # power and must still reproduce; one recorded against the
            # real protocol must stay clean once the bug is fixed.
            expect = "reproduce" if outcome["mutation"] else "clean"
        reproduces = outcome["reproduces"]
        ok = reproduces if expect == "reproduce" else not reproduces
        status = "ok" if ok else "UNEXPECTED"
        kinds = outcome["replayed_witness"]["kinds"]
        print(f"{path}: expect={expect} reproduces={reproduces} "
              f"kinds={kinds} [{status}]")
        if args.json:
            print(json.dumps(outcome, indent=1, sort_keys=True))
        failures += 0 if ok else 1
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="show the experiment inventory")
    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="fig8..fig15, table1, table2, "
                                               "appc, ablation-*, or all")
    bench_parser = sub.add_parser(
        "bench", help="rerun one experiment and diff its tables against "
                      "the committed bench_results.txt/EXPERIMENTS.md "
                      "values (nonzero exit on drift); or --record/--check "
                      "the wall-clock perf trajectory")
    bench_parser.add_argument("experiment", nargs="?",
                              help="fig8..fig15, table1, table2, appc, "
                                   "or ablation-* (omit with "
                                   "--record/--check)")
    bench_parser.add_argument("--record", action="store_true",
                              help="measure the committed perf figures and "
                                   "append normalized entries to "
                                   "BENCH_TRAJECTORY.json")
    bench_parser.add_argument("--check", action="store_true",
                              help="gate the fresh measurement against the "
                                   "last committed trajectory entry; "
                                   "nonzero exit on >20%% normalized "
                                   "throughput regression")
    bench_parser.add_argument("--trajectory", metavar="PATH",
                              help="trajectory file (default: "
                                   "BENCH_TRAJECTORY.json at the repo root)")
    fastpath_parser = sub.add_parser(
        "fastpath", help="run the NAT steady-state scenario with the "
                         "fast path and print cache statistics")
    fastpath_parser.add_argument("--diff", action="store_true",
                                 help="also run the reference path and "
                                      "check bit-identity + speedup; "
                                      "nonzero exit on divergence")
    fastpath_parser.add_argument("--flows", type=int, default=50,
                                 help="concurrent NAT flows (default 50)")
    fastpath_parser.add_argument("--packets", type=int, default=400,
                                 help="packets per flow (default 400)")
    fastpath_parser.add_argument("--seed", type=int, default=5,
                                 help="simulator seed (default 5)")
    fastpath_parser.add_argument("--scheduler", default="heap",
                                 choices=("heap", "wheel"),
                                 help="event scheduler (default heap)")
    fastpath_parser.add_argument("--json", action="store_true",
                                 help="machine-readable output")
    metrics_parser = sub.add_parser(
        "metrics", help="run the quickstart scenario and dump its metrics")
    trace_parser = sub.add_parser(
        "trace", help="run the quickstart scenario and print its trace tail")
    for p in (metrics_parser, trace_parser):
        p.add_argument("--seed", type=int, default=7,
                       help="simulator seed (default 7)")
        p.add_argument("--packets", type=int, default=10,
                       help="packets per phase (default 10)")
        p.add_argument("--json", action="store_true",
                       help="machine-readable output")
    metrics_parser.add_argument("--filter", metavar="GLOB", dest="pattern",
                                help="only metrics matching this glob "
                                     "(matched against the bare name and "
                                     "the name{labels} form)")
    metrics_parser.add_argument("--format", default="table",
                                choices=("table", "csv"),
                                help="output format (default table)")
    trace_parser.add_argument("--tail", type=int, default=40,
                              help="records to print (default 40)")
    trace_parser.add_argument("--out", metavar="PATH",
                              help="also write the retained records as JSONL")
    trace_parser.add_argument("--since", type=float, metavar="T_US",
                              help="only records at/after this simulated "
                                   "time (microseconds)")
    profile_parser = sub.add_parser(
        "profile", help="run a campaign (or 'quickstart') with the "
                        "deterministic self-profiler and print per-"
                        "subsystem wall-time attribution")
    profile_parser.add_argument("target",
                                help="'quickstart' or a chaos campaign name")
    profile_parser.add_argument("--seed", type=int, default=7,
                                help="simulator seed (default 7)")
    profile_parser.add_argument("--packets", type=int, default=10,
                                help="quickstart packets per phase "
                                     "(default 10)")
    profile_parser.add_argument("--flame", metavar="PATH",
                                help="write a collapsed-stack flamegraph "
                                     "(flamegraph.pl / speedscope format)")
    profile_parser.add_argument("--heartbeat", metavar="PATH",
                                help="also stream NDJSON health heartbeats "
                                     "to PATH (view with 'watch')")
    profile_parser.add_argument("--top", type=int, default=12,
                                help="hottest handlers to list (default 12)")
    profile_parser.add_argument("--json", action="store_true",
                                help="machine-readable profile")
    watch_parser = sub.add_parser(
        "watch", help="render a campaign's heartbeat NDJSON stream as a "
                      "live health console")
    watch_parser.add_argument("file", nargs="+",
                              help="heartbeat NDJSON file(s); several "
                                   "files (a sharded run's per-worker "
                                   "heartbeats) merge into one labeled "
                                   "console")
    watch_parser.add_argument("-f", "--follow", action="store_true",
                              help="keep tailing as the files grow")
    watch_parser.add_argument("--max-lines", type=int, dest="max_lines",
                              help="stop after N snapshots")
    shard_parser = sub.add_parser(
        "shard", help="sharded parallel simulation: plan / run / diff / "
                      "bench")
    shard_sub = shard_parser.add_subparsers(dest="shard_command")
    shard_plan = shard_sub.add_parser(
        "plan", help="render an app's committed shard plan + worker "
                     "assignment table")
    shard_plan.add_argument("app", help="app name (e.g. nat, sync_counter)")
    shard_plan.add_argument("--workers", type=int, default=2,
                            help="worker count for the assignment table "
                                 "(default 2)")
    shard_plan.add_argument("--json", action="store_true",
                            help="emit the raw plan JSON (same renderer "
                                 "as verify --emit-plans)")
    shard_run = shard_sub.add_parser(
        "run", help="run a scenario sharded across N workers and merge")
    shard_run.add_argument("scenario",
                           help="scenario name (see repro.shard.scenarios)")
    shard_run.add_argument("--workers", type=int, default=2)
    shard_run.add_argument("--seed", type=int, default=None,
                           help="override the scenario's default seed")
    shard_run.add_argument("--mode", choices=("inline", "process"),
                           default="inline",
                           help="inline (sequential, one process) or "
                                "process (spawned workers, framed sync)")
    shard_run.add_argument("--fastpath", action="store_true",
                           help="install the fast path in every shard")
    shard_run.add_argument("--no-capture", action="store_true",
                           help="skip record capture (throughput runs; "
                                "merge reports counts only)")
    shard_run.add_argument("--heartbeat-dir", dest="heartbeat_dir",
                           help="write per-shard heartbeat NDJSON files "
                                "here (view with 'watch DIR/*.ndjson -f')")
    shard_run.add_argument("--save", help="write the merged summary JSON "
                                          "into this directory")
    shard_run.add_argument("--json", action="store_true",
                           help="machine-readable merged summary")
    shard_diff = shard_sub.add_parser(
        "diff", help="byte-identity gate: N-shard merged run vs the "
                     "single-process reference")
    shard_diff.add_argument("scenario")
    shard_diff.add_argument("--workers", type=int, default=2)
    shard_diff.add_argument("--mode", choices=("inline", "process"),
                            default="inline")
    shard_diff.add_argument("--fastpath", action="store_true")
    shard_bench = shard_sub.add_parser(
        "bench", help="worker scaling curve on the million-flow campaign")
    shard_bench.add_argument("--workers-list", dest="workers_list",
                             default="1,2,4,8",
                             help="comma-separated worker counts "
                                  "(default 1,2,4,8)")
    shard_bench.add_argument("--packets", type=int, default=None,
                             help="packets per point (default: the "
                                  "committed-bench size)")
    shard_bench.add_argument("--population", type=int, default=None,
                             help="Zipf flow population (default: the "
                                  "committed-bench size)")
    shard_bench.add_argument("--record", action="store_true",
                             help="merge the curve into BENCH_shard.json")
    shard_bench.add_argument("--out", help="record to this path instead "
                                           "of the committed file")
    spans_parser = sub.add_parser(
        "spans", help="run the quickstart scenario and verify packet-span "
                      "completeness + RTT attribution")
    timeline_parser = sub.add_parser(
        "timeline", help="export the quickstart scenario as a Chrome "
                         "trace-event (Perfetto) timeline")
    for p in (spans_parser, timeline_parser):
        p.add_argument("--seed", type=int, default=7,
                       help="simulator seed (default 7)")
        p.add_argument("--packets", type=int, default=10,
                       help="packets per phase (default 10)")
    spans_parser.add_argument("--json", action="store_true",
                              help="machine-readable output")
    timeline_parser.add_argument("flow", nargs="?",
                                 help="restrict to one flow's causal "
                                      "closure (see --list-flows)")
    timeline_parser.add_argument("--out", metavar="PATH",
                                 help="write the JSON document here "
                                      "(default: stdout)")
    timeline_parser.add_argument("--validate", action="store_true",
                                 help="schema-check the document before "
                                      "writing it")
    timeline_parser.add_argument("--list-flows", action="store_true",
                                 dest="list_flows",
                                 help="print the flow tags seen in the "
                                      "trace and exit")
    verify_parser = sub.add_parser(
        "verify", help="static analysis: pipeline constraints, determinism "
                       "lint, telemetry schema (see docs/VERIFY.md)")
    verify_parser.add_argument("paths", nargs="*",
                               help="files/directories for the tree lints "
                                    "(default: the repro source tree)")
    verify_parser.add_argument("--all", action="store_true",
                               dest="all_targets",
                               help="verify every builtin app's deployed "
                                    "pipeline plus the whole source tree")
    verify_parser.add_argument("--app", metavar="NAME",
                               help="verify one builtin app's pipeline")
    verify_parser.add_argument("--json", action="store_true",
                               help="print the JSON report")
    verify_parser.add_argument("--out", metavar="PATH",
                               help="also write the JSON report here")
    verify_parser.add_argument("--strict", action="store_true",
                               help="fail on warnings too, not just errors")
    verify_parser.add_argument("--rule", metavar="ID[,ID]", dest="rules",
                               help="report only these rule ids (plus "
                                    "QA001/QA002 suppression hygiene)")
    verify_parser.add_argument("--baseline", metavar="PATH", nargs="?",
                               const="", dest="baseline",
                               help="fail only on per-rule count "
                                    "regressions vs this baseline "
                                    "(default: verify_baseline.json)")
    verify_parser.add_argument("--write-baseline", metavar="PATH",
                               nargs="?", const="", dest="write_baseline",
                               help="snapshot current per-rule counts "
                                    "(default: verify_baseline.json)")
    verify_parser.add_argument("--plan", action="store_true",
                               dest="show_plans",
                               help="render the per-app shard plans the "
                                    "partition pass computed")
    verify_parser.add_argument("--emit-plans", metavar="DIR",
                               dest="emit_plans",
                               help="write canonical shard_plan JSON for "
                                    "every analyzed app into DIR")
    chaos_parser = sub.add_parser(
        "chaos", help="run a fault-injection campaign with invariant "
                      "auditing and print its verdict report")
    chaos_parser.add_argument("campaign", nargs="?",
                              help="campaign name (omit with --list)")
    chaos_parser.add_argument("--list", action="store_true",
                              dest="list_campaigns",
                              help="show the campaign inventory")
    chaos_parser.add_argument("--seed", type=int, default=42,
                              help="simulator seed (default 42)")
    chaos_parser.add_argument("--json", action="store_true",
                              help="print the raw verdict report JSON")
    chaos_parser.add_argument("--out", metavar="PATH",
                              help="also write the verdict report JSON")
    chaos_parser.add_argument("--check-determinism", action="store_true",
                              help="run twice and require byte-identical "
                                   "verdict reports")
    chaos_parser.add_argument("--trace", metavar="PATH",
                              help="stream the full trace record stream "
                                   "to PATH as JSONL (first run only)")
    fuzz_parser = sub.add_parser(
        "fuzz", help="seeded fault-schedule fuzzing: randomized schedules, "
                     "automatic shrinking, resilience scorecard")
    fuzz_sub = fuzz_parser.add_subparsers(dest="fuzz_command", required=True)
    fuzz_run = fuzz_sub.add_parser(
        "run", help="fuzz a budget of schedules and shrink every violation")
    fuzz_run.add_argument("--seed", type=int, default=5,
                          help="fuzzer seed (default 5)")
    fuzz_run.add_argument("--budget", type=int, default=24,
                          help="schedules to generate (default 24)")
    fuzz_run.add_argument("--mutation", metavar="NAME",
                          help="enable a seeded bug from repro.mutation "
                               "for every run")
    fuzz_run.add_argument("--shrink-budget", type=int, default=80,
                          dest="shrink_budget",
                          help="oracle runs per shrink (default 80)")
    fuzz_run.add_argument("--no-shrink", action="store_true",
                          dest="no_shrink",
                          help="report violations without minimizing them")
    fuzz_run.add_argument("--out-dir", metavar="DIR", dest="out_dir",
                          help="write one replayable regression file per "
                               "violation into DIR")
    fuzz_run.add_argument("--scorecard", metavar="PATH",
                          help="write the resilience scorecard JSON here")
    fuzz_run.add_argument("--json", action="store_true",
                          help="print the full fuzz report JSON")
    fuzz_check = fuzz_sub.add_parser(
        "self-check", help="mutation-test the fuzzer: a seeded bug must be "
                           "found, shrunk, and vanish when disabled")
    fuzz_check.add_argument("--seed", type=int, default=5,
                            help="fuzzer seed (default 5)")
    fuzz_check.add_argument("--budget", type=int, default=24,
                            help="schedules per sweep (default 24)")
    fuzz_check.add_argument("--bug", default="skip_hold_dedup",
                            help="seeded bug to plant "
                                 "(default skip_hold_dedup)")
    fuzz_check.add_argument("--shrink-budget", type=int, default=80,
                            dest="shrink_budget",
                            help="oracle runs for the shrink (default 80)")
    fuzz_check.add_argument("--max-minimal-faults", type=int, default=3,
                            dest="max_minimal_faults",
                            help="largest acceptable minimized reproducer "
                                 "(default 3)")
    fuzz_check.add_argument("--out", metavar="PATH",
                            help="also write the self-check report JSON")
    fuzz_check.add_argument("--json", action="store_true",
                            help="print the self-check report JSON")
    fuzz_shrink = fuzz_sub.add_parser(
        "shrink", help="re-shrink a saved regression file in place")
    fuzz_shrink.add_argument("file", help="chaos-fuzz-regression JSON file")
    fuzz_shrink.add_argument("--budget", type=int, default=80,
                             help="oracle runs (default 80)")
    fuzz_shrink.add_argument("--out", metavar="PATH",
                             help="write here instead of in place")
    fuzz_replay = fuzz_sub.add_parser(
        "replay", help="replay regression files and check their witnesses "
                       "still (or no longer) reproduce")
    fuzz_replay.add_argument("files", nargs="+",
                             help="chaos-fuzz-regression JSON files")
    fuzz_replay.add_argument("--expect", default="auto",
                             choices=("auto", "reproduce", "clean"),
                             help="auto: mutation-recorded files must "
                                  "reproduce, real-protocol files must be "
                                  "clean (default)")
    fuzz_replay.add_argument("--json", action="store_true",
                             help="print each replay outcome JSON")
    args = parser.parse_args(argv)

    if args.command == "list":
        width = max(len(k) for k in EXPERIMENTS)
        for key, (_file, description) in EXPERIMENTS.items():
            print(f"{key.ljust(width)}  {description}")
        return 0
    if args.command == "metrics":
        return show_metrics(args.seed, args.packets, args.json,
                            args.pattern, args.format)
    if args.command == "trace":
        return show_trace(args.seed, args.packets, args.tail, args.json,
                          args.out, args.since)
    if args.command == "profile":
        return run_profile(args.target, args.seed, args.packets,
                           args.flame, args.heartbeat, args.json, args.top)
    if args.command == "watch":
        return run_watch(args.file, args.follow, args.max_lines)
    if args.command == "shard":
        return run_shard_cli(args)
    if args.command == "spans":
        return show_spans(args.seed, args.packets, args.json)
    if args.command == "timeline":
        return show_timeline(args.flow, args.seed, args.packets, args.out,
                             args.validate, args.list_flows)
    if args.command == "verify":
        from repro.verify.cli import default_baseline_path, run_verify

        baseline = args.baseline
        if baseline == "":
            baseline = default_baseline_path()
        write_baseline = args.write_baseline
        if write_baseline == "":
            write_baseline = default_baseline_path()
        return run_verify(args.paths, args.all_targets, args.app,
                          args.json, args.out, args.strict,
                          rules=args.rules, baseline=baseline,
                          write_baseline=write_baseline,
                          show_plans=args.show_plans,
                          emit_plans=args.emit_plans)
    if args.command == "chaos":
        return run_chaos(args.campaign, args.seed, args.json, args.out,
                         args.check_determinism, args.list_campaigns,
                         args.trace)
    if args.command == "fuzz":
        return run_fuzz_cli(args)
    if args.command == "bench":
        if args.record or args.check:
            return run_bench_trajectory(args.record, args.check,
                                        args.trajectory)
        if args.experiment is None:
            print("bench: give an experiment name, or --record/--check "
                  "for the perf trajectory", file=sys.stderr)
            return 2
        return run_bench_diff(args.experiment)
    if args.command == "fastpath":
        return run_fastpath(args.flows, args.packets, args.seed,
                            args.scheduler, args.diff, args.json)
    return run_experiment(args.experiment)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

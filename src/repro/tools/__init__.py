"""Command-line utilities: the experiment runner and inventory."""

from repro.tools.runner import EXPERIMENTS, main, run_experiment

__all__ = ["EXPERIMENTS", "main", "run_experiment"]

"""RedPlane core: the fault-tolerant state store protocol for switches."""

from repro.core.api import attach_redplane, attach_snapshot_replication
from repro.core.app import AppVerdict, InSwitchApp
from repro.core.epsilon import EpsilonGuard, EpsilonPolicy
from repro.core.engine import (
    HistoryEvent,
    RedPlaneConfig,
    RedPlaneEngine,
    RedPlaneMode,
)
from repro.core.flowstate import FlowStateView, StateSpec
from repro.core.protocol import (
    MessageType,
    RedPlaneMessage,
    STORE_UDP_PORT,
    SWITCH_UDP_PORT,
    make_protocol_packet,
    pack_packets,
    parse_protocol_packet,
    unpack_packets,
)
from repro.core.snapshot import LazySnapshotArray, SnapshotReplicator

__all__ = [
    "attach_redplane",
    "attach_snapshot_replication",
    "AppVerdict",
    "InSwitchApp",
    "EpsilonGuard",
    "EpsilonPolicy",
    "HistoryEvent",
    "RedPlaneConfig",
    "RedPlaneEngine",
    "RedPlaneMode",
    "FlowStateView",
    "StateSpec",
    "MessageType",
    "RedPlaneMessage",
    "STORE_UDP_PORT",
    "SWITCH_UDP_PORT",
    "make_protocol_packet",
    "pack_packets",
    "parse_protocol_packet",
    "unpack_packets",
    "LazySnapshotArray",
    "SnapshotReplicator",
]

"""RedPlane state-replication protocol wire format (Fig 4).

A protocol message rides in a UDP datagram between a switch's protocol IP
and a state-store server. The RedPlane header carries a per-flow sequence
number, a message type, and the flow key; depending on the type it also
carries flow-state values and/or a piggybacked output packet (the
delay-line-memory trick of §5.1: the network plus store DRAM stand in for
switch packet buffer).

Layout (network byte order)::

    seq      u32   per-flow monotonically increasing sequence number
    type     u8    MessageType
    flags    u8    bit0: has piggyback
    aux      u16   snapshot slot index / miscellaneous small field
    flowkey  13B   packed IP 5-tuple
    nvals    u8    number of 32-bit state values
    vals     nvals * u32
    [plen    u16   piggybacked packet length]
    [packet  plen bytes]
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import List, Optional

from repro.net.packet import FlowKey, Packet

#: UDP port the state store listens on.
STORE_UDP_PORT = 4800
#: UDP port on which switches receive protocol responses.
SWITCH_UDP_PORT = 4801

_FIXED = struct.Struct("!IBBH")  # seq, type, flags, aux
_FLAG_PIGGYBACK = 0x01


class MessageType(enum.IntEnum):
    """RedPlane request and acknowledgment types."""

    LEASE_NEW_REQ = 1      # state initialization or migration (§5.1, step 1/4)
    REPL_WRITE_REQ = 2     # synchronous state-update replication (step 2)
    LEASE_RENEW_REQ = 3    # explicit renewal for read-centric flows (§5.3)
    READ_BUFFER_REQ = 4    # read packet buffered through the network (§5.1)
    SNAPSHOT_REPL_REQ = 5  # asynchronous snapshot slot replication (§5.4)
    LEASE_NEW_ACK = 17
    REPL_WRITE_ACK = 18
    LEASE_RENEW_ACK = 19
    READ_BUFFER_ACK = 20
    SNAPSHOT_REPL_ACK = 21

    def is_request(self) -> bool:
        return self < MessageType.LEASE_NEW_ACK

    def ack_type(self) -> "MessageType":
        """The acknowledgment type answering this request type."""
        if not self.is_request():
            raise ValueError(f"{self.name} is not a request")
        return MessageType(self + 16)


@dataclass
class RedPlaneMessage:
    """A parsed RedPlane protocol message."""

    seq: int
    msg_type: MessageType
    flow_key: FlowKey
    vals: List[int] = field(default_factory=list)
    piggyback: Optional[bytes] = None
    aux: int = 0

    MAX_VALS = 255

    def pack(self) -> bytes:
        if len(self.vals) > self.MAX_VALS:
            raise ValueError(f"too many state values: {len(self.vals)}")
        flags = _FLAG_PIGGYBACK if self.piggyback is not None else 0
        out = bytearray(
            _FIXED.pack(self.seq & 0xFFFFFFFF, int(self.msg_type), flags, self.aux)
        )
        out += self.flow_key.pack()
        out += bytes([len(self.vals)])
        for val in self.vals:
            out += struct.pack("!I", val & 0xFFFFFFFF)
        if self.piggyback is not None:
            if len(self.piggyback) > 0xFFFF:
                raise ValueError("piggybacked packet too large")
            out += struct.pack("!H", len(self.piggyback))
            out += self.piggyback
        return bytes(out)

    @classmethod
    def unpack(cls, data: bytes) -> "RedPlaneMessage":
        if len(data) < _FIXED.size + FlowKey.PACKED_LEN + 1:
            raise ValueError("truncated RedPlane message")
        seq, msg_type, flags, aux = _FIXED.unpack_from(data, 0)
        offset = _FIXED.size
        flow_key = FlowKey.unpack(data[offset : offset + FlowKey.PACKED_LEN])
        offset += FlowKey.PACKED_LEN
        nvals = data[offset]
        offset += 1
        vals = list(
            struct.unpack_from(f"!{nvals}I", data, offset) if nvals else ()
        )
        offset += 4 * nvals
        piggyback: Optional[bytes] = None
        if flags & _FLAG_PIGGYBACK:
            (plen,) = struct.unpack_from("!H", data, offset)
            offset += 2
            piggyback = data[offset : offset + plen]
            if len(piggyback) != plen:
                raise ValueError("truncated piggybacked packet")
        return cls(
            seq=seq,
            msg_type=MessageType(msg_type),
            flow_key=flow_key,
            vals=vals,
            piggyback=piggyback,
            aux=aux,
        )

    def header_size(self) -> int:
        """Wire size of the RedPlane header without the piggybacked packet."""
        size = _FIXED.size + FlowKey.PACKED_LEN + 1 + 4 * len(self.vals)
        if self.piggyback is not None:
            size += 2
        return size


def pack_packets(packets: List[bytes]) -> bytes:
    """Bundle several serialized packets into one piggyback blob.

    Definition 1 allows a program to emit zero, one, or multiple output
    packets per input; all of them must be withheld until the state update
    is durable, so they all ride in the same replication request. Layout:
    ``count u8``, then per packet ``len u16 + bytes``.
    """
    if len(packets) > 255:
        raise ValueError("too many piggybacked packets")
    out = bytearray([len(packets)])
    for raw in packets:
        if len(raw) > 0xFFFF:
            raise ValueError("piggybacked packet too large")
        out += struct.pack("!H", len(raw))
        out += raw
    return bytes(out)


def unpack_packets(blob: bytes) -> List[bytes]:
    """Inverse of :func:`pack_packets`."""
    if not blob:
        raise ValueError("empty piggyback blob")
    count = blob[0]
    offset = 1
    out: List[bytes] = []
    for _ in range(count):
        (length,) = struct.unpack_from("!H", blob, offset)
        offset += 2
        raw = blob[offset : offset + length]
        if len(raw) != length:
            raise ValueError("truncated piggyback bundle")
        out.append(raw)
        offset += length
    return out


def make_protocol_packet(
    src_ip: int,
    dst_ip: int,
    msg: RedPlaneMessage,
    sport: int = SWITCH_UDP_PORT,
    dport: int = STORE_UDP_PORT,
) -> Packet:
    """Encapsulate a RedPlane message in UDP/IP; tags ``meta['rp_kind']``.

    ``meta['rp_piggyback_len']`` records how many of the packet's bytes are
    a piggybacked original packet: bandwidth accounting (Fig 10) attributes
    those to application traffic and only the encapsulation + RedPlane
    header to protocol overhead.
    """
    pkt = Packet.udp(src_ip, dst_ip, sport, dport, payload=msg.pack())
    pkt.meta["rp_kind"] = "request" if msg.msg_type.is_request() else "response"
    pkt.meta["rp_piggyback_len"] = len(msg.piggyback) if msg.piggyback else 0
    return pkt


def parse_protocol_packet(pkt: Packet) -> RedPlaneMessage:
    """Extract the RedPlane message from a protocol packet."""
    return RedPlaneMessage.unpack(pkt.payload)

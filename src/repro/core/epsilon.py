"""Enforcing the inconsistency bound epsilon (§5.5).

Bounded-inconsistency mode guarantees that the system recovers to a state
from within the last ``epsilon`` seconds *provided snapshots keep
succeeding*. The paper closes the loop: RedPlane "tracks the time since
the last successful replication; if the time bound is exceeded, an
application-specific action may be taken (e.g., dropping further packets
or treating the switch as failed)".

:class:`EpsilonGuard` implements that watchdog on the switch: it polls the
snapshot replicator's progress and, when the bound is exceeded (store
unreachable, persistent loss), invokes a policy — drop the app's further
packets, mark the switch failed, or call a user hook.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.core.snapshot import SnapshotReplicator
from repro.switch.pipeline import ControlBlock, PipelineContext


class EpsilonPolicy(enum.Enum):
    """What to do when the inconsistency bound is exceeded."""

    #: Drop application packets until replication catches up (no further
    #: un-replicated state accumulates).
    DROP_PACKETS = "drop"
    #: Treat the switch as failed: fail-stop it so routing moves traffic
    #: to a replica whose state store view is current.
    FAIL_SWITCH = "fail"
    #: Only invoke the user callback.
    NOTIFY = "notify"


class EpsilonGuard(ControlBlock):
    """Watchdog over a snapshot replicator's staleness.

    Installed ahead of the application in the pipeline. While the time
    since the last *complete, acknowledged* snapshot stays within
    ``epsilon_us`` the guard is transparent; beyond it the configured
    policy applies until replication recovers.
    """

    name = "epsilon-guard"

    def __init__(
        self,
        replicator: SnapshotReplicator,
        epsilon_us: float,
        policy: EpsilonPolicy = EpsilonPolicy.DROP_PACKETS,
        on_violation: Optional[Callable[[], None]] = None,
        check_interval_us: Optional[float] = None,
    ) -> None:
        if epsilon_us <= 0:
            raise ValueError("epsilon must be positive")
        self.replicator = replicator
        self.epsilon_us = epsilon_us
        self.policy = policy
        self.on_violation = on_violation
        self.check_interval_us = check_interval_us or (epsilon_us / 4)
        self.switch = replicator.switch
        self.violated = False
        self.violations = 0
        self.packets_dropped = 0
        self._started = False

    # -- watchdog timer -------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        # Grace: the first snapshot needs one period to complete.
        self.switch.sim.schedule(self.epsilon_us, self._check)

    def _check(self) -> None:
        if not self._started or self.switch.failed:
            return
        stale = self.replicator.staleness_us()
        if stale > self.epsilon_us and not self.violated:
            self.violated = True
            self.violations += 1
            if self.on_violation is not None:
                self.on_violation()
            if self.policy is EpsilonPolicy.FAIL_SWITCH:
                # Self-fail: indistinguishable from a crash, so the normal
                # failover machinery (reroute + lease migration) kicks in.
                self.switch.fail()
                return
        elif stale <= self.epsilon_us and self.violated:
            self.violated = False
        self.switch.sim.schedule(self.check_interval_us, self._check)

    def stop(self) -> None:
        self._started = False

    # -- pipeline block ----------------------------------------------------------

    def process(self, ctx: PipelineContext, switch) -> bool:
        if (
            self.violated
            and self.policy is EpsilonPolicy.DROP_PACKETS
            and ctx.pkt.meta.get("snapshot_read") is None
        ):
            # Keep protocol/snapshot machinery flowing; only app traffic
            # stops accumulating un-replicated state.
            from repro.net.packet import UDPHeader
            from repro.core.protocol import SWITCH_UDP_PORT, STORE_UDP_PORT

            l4 = ctx.pkt.l4
            if isinstance(l4, UDPHeader) and (
                l4.dport in (SWITCH_UDP_PORT, STORE_UDP_PORT)
                or l4.sport in (SWITCH_UDP_PORT, STORE_UDP_PORT)
            ):
                return True
            self.packets_dropped += 1
            ctx.drop()
            return False
        return True

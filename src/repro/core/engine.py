"""The RedPlane protocol engine: the switch-side data-plane component.

This control block is the reproduction of the paper's ``RedPlaneIngress`` /
``RedPlaneEgress`` P4 control blocks (Appendix B). It wraps a developer's
:class:`~repro.core.app.InSwitchApp` and implements, entirely in the data
plane:

* **lease-based state ownership** (§5.3) — a packet may only touch state
  while this switch holds the flow's lease; otherwise a lease request is
  sent to the state store with the packet piggybacked, and the store's
  buffering of that request doubles as state migration during failover;
* **piggybacking** (§5.1) — output packets ride inside replication
  requests and are released only when the acknowledgment returns, using
  the network + store DRAM as delay-line memory instead of switch buffer;
* **sequencing** (§5.2) — per-flow monotonically increasing sequence
  numbers let the store discard stale updates despite reordering;
* **switch-side retransmission** (§5.2) — a *truncated* copy of every
  replication request circulates through an egress-to-egress mirror
  session and is resent if no acknowledgment arrives in time;
* **read gating** — packets that only read state pass through at line
  rate (the zero-overhead fast path of Fig 8/9) unless a state update is
  still in flight, in which case they are buffered through the network
  with a special request type until the latest update is acknowledged.

Per-flow protocol state (lease expiry, current sequence number, last
acknowledged sequence number) lives in register arrays, sized by
``max_flows`` — exactly the SRAM the paper's Table 2 accounts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple, cast

from repro.mutation import mutation_active
from repro.net import constants
from repro.net.packet import FlowKey, Packet, UDPHeader
from repro.switch.asic import SwitchASIC
from repro.switch.mirror import MirrorCopy
from repro.switch.pipeline import ControlBlock, PipelineContext
from repro.switch.registers import RegisterArray
from repro.core.app import AppVerdict, InSwitchApp
from repro.core.flowstate import FlowStateView
from repro.core.protocol import (
    MessageType,
    RedPlaneMessage,
    STORE_UDP_PORT,
    SWITCH_UDP_PORT,
    make_protocol_packet,
    pack_packets,
    parse_protocol_packet,
    unpack_packets,
)
from repro.statestore.netchain import NETCHAIN_UDP_PORT
from repro.statestore.server import CHAIN_UDP_PORT
from repro.statestore.sharding import ShardMap
from repro.telemetry import trace as tt
from repro.telemetry.compat import StatGroupView

#: UDP ports whose traffic is never treated as application traffic.
_PROTOCOL_PORTS = {STORE_UDP_PORT, SWITCH_UDP_PORT, CHAIN_UDP_PORT, NETCHAIN_UDP_PORT}

#: aux value marking a read-buffer request whose packet has not been
#: processed yet (it arrived while the flow's lease was still pending).
_AUX_UNPROCESSED = 1

#: Tag prefixing a held packet inside a lease-request piggyback: the tag
#: plus an 8-byte hold nonce let the switch re-inject each *hold* exactly
#: once even when the ack carrying it is duplicated in the network.
_HOLD_TAG = b"RPHOLD\x01"
_HOLD_HEADER_LEN = len(_HOLD_TAG) + 8


class RedPlaneMode(enum.Enum):
    """The two consistency modes of §4."""

    LINEARIZABLE = "linearizable"
    BOUNDED_INCONSISTENCY = "bounded"


@dataclass
class RedPlaneConfig:
    """Tunable protocol parameters (defaults match the prototype)."""

    mode: RedPlaneMode = RedPlaneMode.LINEARIZABLE
    lease_period_us: float = constants.LEASE_PERIOD_US
    renew_interval_us: float = constants.LEASE_RENEW_INTERVAL_US
    retransmit_timeout_us: float = constants.RETRANSMIT_TIMEOUT_US
    #: Retransmission backoff: each resend multiplies the timeout by this
    #: factor (capped) so a request buffered at the store for a full lease
    #: period does not generate tens of thousands of duplicates.
    retransmit_backoff: float = 2.0
    retransmit_timeout_max_us: float = 5_000.0
    max_flows: int = 4096
    #: Safety margin subtracted from the switch's view of its own lease so
    #: it always expires locally before it does at the store.
    lease_margin_us: float = 10_000.0
    #: Record input/output events for linearizability checking.
    record_history: bool = True


@dataclass
class HistoryEvent:
    """One event of a history (Definition 2): an input or an output."""

    kind: str  # "input" | "output"
    key: FlowKey
    trace_id: int
    time: float
    switch: str
    info: Tuple = ()


@dataclass
class RetransmitState:
    """Backoff state of one circulating truncated request copy (§5.2).

    Lives on the mirror copy's metadata under the ``"rtx"`` slot and is
    the single mutable record the retransmitter reads and writes each
    egress pass. Inspectable through
    :meth:`RedPlaneEngine.retransmit_states`, which is how chaos verdict
    reports show what a campaign left in flight.
    """

    kind: str             # "write" | "lease_new" | "renew" | "snapshot"
    idx: int              # flow register index (-1 for snapshot copies)
    seq: int              # sequence the acknowledgment must reach
    msg: RedPlaneMessage  # header-only request resent on timeout
    sent_at: float        # simulated time of the last (re)send
    timeout_us: float     # current deadline (grows by the backoff factor)
    resends: int = 0      # timeouts fired so far (storm observability)
    uid: int = 0          # span uid of the last (re)sent request packet


class RedPlaneEngine(ControlBlock):
    """RedPlane-enabled application: protocol engine wrapping an app."""

    name = "redplane"

    def __init__(
        self,
        switch: SwitchASIC,
        app: InSwitchApp,
        shard_map: ShardMap,
        config: Optional[RedPlaneConfig] = None,
    ) -> None:
        self.switch = switch
        self.app = app
        self.shard_map = shard_map
        self.config = config or RedPlaneConfig()
        cfg = self.config

        # Flow-key -> register index. Models the hash-indexed flow table.
        self._flow_idx: Dict[FlowKey, int] = {}
        self._idx_key: Dict[int, FlowKey] = {}
        self._next_idx = 0
        self._free_indices: List[int] = []

        n = cfg.max_flows
        self.reg_lease_expiry = RegisterArray(f"{switch.name}.rp.lease_expiry", n, 64)
        self.reg_cur_seq = RegisterArray(f"{switch.name}.rp.cur_seq", n, 32)
        self.reg_last_acked = RegisterArray(f"{switch.name}.rp.last_acked", n, 32)
        self.reg_lease_pending = RegisterArray(f"{switch.name}.rp.lease_pending", n, 1)
        self.reg_last_renew = RegisterArray(f"{switch.name}.rp.last_renew", n, 64)
        # Application per-flow state values, one register array per field.
        self.state_regs = [
            RegisterArray(f"{switch.name}.rp.state.{fname}", n, 32)
            for fname, _default in app.state_spec.fields
        ]
        self._state_installed: Set[int] = set()

        # Egress-to-egress mirror session used as the retransmission buffer;
        # copies are truncated to the protocol headers (§5.2) — the mirror
        # buffers ~the RedPlane header, never payload.
        self.mirror = switch.new_mirror_session(truncate_to_bytes=48)
        self.mirror.handler = self._mirror_pass

        #: Invoked for snapshot acknowledgments (bounded-inconsistency mode).
        self.snapshot_ack_handler: Optional[Callable[[RedPlaneMessage], None]] = None

        #: Per-flow outstanding explicit renewals (cleared by renew acks).
        self._renew_outstanding: Set[int] = set()

        # Circulating mirror copies, released as their acks arrive: the
        # hardware drops an acknowledged copy on its next egress pass; the
        # simulator collapses that to an immediate release.
        self._copies_write: Dict[int, Dict[int, MirrorCopy]] = {}
        self._copy_lease: Dict[int, MirrorCopy] = {}
        self._copy_renew: Dict[int, MirrorCopy] = {}
        self._copies_snapshot: Dict[Tuple[FlowKey, int], MirrorCopy] = {}

        self.history: List[HistoryEvent] = []
        # Protocol statistics live in the run's metric registry, one
        # counter per stat labeled by switch; ``stats`` keeps the historical
        # dict reading surface as a view over them.
        metrics = switch.sim.metrics
        self.tracer = switch.sim.tracer
        self._c = {
            stat: metrics.counter(f"redplane.{stat}", switch=switch.name)
            for stat in (
                "app_packets",
                "fast_path_forwards",
                "writes_replicated",
                "reads_buffered",
                "lease_requests",
                "lease_renewals",
                "retransmissions",
                "acks_received",
                "piggybacks_released",
                "piggyback_dups_dropped",
                "stale_acks_ignored",
            )
        }
        # Hold-nonces of every held packet already re-injected into the
        # pipeline. A lease-new ack can arrive more than once for the same
        # request (network duplication, or acks to both the original and a
        # resend); re-processing the held packet would double-apply the
        # application update — a linearizability violation — whereas
        # suppressing a genuine second hold is at most a lost input,
        # which §4.2 permits. The nonce is minted per *hold* so two
        # distinct held packets with identical wire bytes (apps whose
        # requests carry no client-side id) are never conflated.
        self._reinjected: set = set()
        self.stats = StatGroupView(self._c)
        #: Replication round trips as the switch observes them: time from a
        #: request's (re)send to the release of its mirrored copy.
        self._h_ack_rtt = metrics.histogram(
            "redplane.ack_rtt_us", switch=switch.name
        )
        #: Resend copies each acknowledged request needed before release —
        #: 0 on a healthy path; the distribution's tail is the resend-storm
        #: signal the chaos scorecard ranks fault classes by.
        self._h_resends = metrics.histogram(
            "redplane.resends_per_request", switch=switch.name
        )
        self._c_reclaimed = metrics.counter(
            "redplane.flows_reclaimed", switch=switch.name
        )
        self._g_flow_table = metrics.gauge(
            "redplane.flow_table_entries", switch=switch.name
        )

    # ------------------------------------------------------------------
    # pipeline entry point
    # ------------------------------------------------------------------

    def process(self, ctx: PipelineContext, switch: SwitchASIC) -> bool:
        pkt = ctx.pkt
        if self._is_protocol_packet(pkt):
            if (
                pkt.ip is not None
                and pkt.ip.dst == self.switch.ip
                and isinstance(pkt.l4, UDPHeader)
                and pkt.l4.dport == SWITCH_UDP_PORT
            ):
                self._handle_response(ctx)
                ctx.consume()
                return False
            # Protocol traffic in transit (other switches / store chain):
            # forward untouched, never app-processed.
            return True

        key = self.app.partition_key(pkt)
        if key is None:
            return True  # not application traffic

        self._c["app_packets"].inc()
        if not pkt.meta.get("rp_reinjected"):
            self._record("input", key, pkt)

        if self.config.mode is RedPlaneMode.BOUNDED_INCONSISTENCY:
            # Bounded mode has no per-packet coordination at all (§4.4):
            # state lives in lazy-snapshot structures replicated
            # asynchronously, several switches may update their own copies
            # concurrently, and recovery restores the last snapshot — so
            # no lease, no sequencing, no piggybacking on this path.
            return self._bounded_path(ctx, key)

        idx = self._flow_index(key)
        now = self.switch.sim.now

        lease_expiry = self.reg_lease_expiry.read(ctx, idx)
        if lease_expiry <= now:
            self._no_lease_path(ctx, key, idx, now, lease_expiry)
            return False

        return self._leased_path(ctx, key, idx, now)

    # ------------------------------------------------------------------
    # packet paths
    # ------------------------------------------------------------------

    def _no_lease_path(
        self,
        ctx: PipelineContext,
        key: FlowKey,
        idx: int,
        now: float,
        lease_expiry: float = 0.0,
    ) -> None:
        """No valid lease: request one, piggybacking the packet (§5.1/§5.3)."""
        pending = self.reg_lease_pending.access(ctx, idx, lambda old: (1, old))
        if not pending and lease_expiry > 0:
            # The flow held a lease before; it has lapsed locally.
            self.tracer.emit(
                tt.LEASE_EXPIRY,
                switch=self.switch.name,
                flow=str(key),
                expired_at=lease_expiry,
            )
        msg = RedPlaneMessage(
            seq=0,
            msg_type=MessageType.LEASE_NEW_REQ,
            flow_key=key,
            piggyback=pack_packets([self._wrap_hold(ctx.pkt.to_bytes())]),
        )
        req_uid = self._send_request(ctx, msg,
                                     parent_uid=ctx.pkt.meta.get("uid"))
        self._c["lease_requests"].inc()
        if not pending:
            # Only the first request per flow is retransmitted; piggybacked
            # packets on later requests may be lost, which the correctness
            # model permits (a lost input, §4.2).
            self.tracer.emit(
                tt.LEASE_REQUEST, switch=self.switch.name, flow=str(key)
            )
            self._mirror_request(msg, kind="lease_new", idx=idx,
                                 req_uid=req_uid)
        ctx.consume()

    def _bounded_path(self, ctx: PipelineContext, key: FlowKey) -> bool:
        """Bounded-inconsistency fast path: run the app, forward, done."""
        idx = self._flow_index(key)
        vals = [reg.cp_read(idx) for reg in self.state_regs]
        view = FlowStateView(self.app.state_spec, vals)
        verdict = self.app.process(view, ctx.pkt, ctx, self.switch)
        if view.write_occurred:
            for reg, new_val in zip(self.state_regs, view.vals()):
                reg.access(ctx, idx, lambda _old, v=new_val: (v, v))
        if verdict is AppVerdict.DROP:
            ctx.drop()
            return False
        self._c["fast_path_forwards"].inc()
        self._record("output", key, ctx.pkt)
        return True

    def _leased_path(
        self, ctx: PipelineContext, key: FlowKey, idx: int, now: float
    ) -> bool:
        """Lease held: run the application, then replicate if it wrote."""
        pkt = ctx.pkt
        vals = [reg.cp_read(idx) for reg in self.state_regs]
        view = FlowStateView(self.app.state_spec, vals)
        verdict = self.app.process(view, pkt, ctx, self.switch)

        wrote = view.write_occurred and self.config.mode is RedPlaneMode.LINEARIZABLE
        if view.write_occurred:
            # Commit new values to the state registers: one atomic RMW per
            # array for this packet (the cp_read above models the read
            # phase of the same stateful-ALU operation).
            new_vals = view.vals()
            for reg, new_val in zip(self.state_regs, new_vals):
                reg.access(ctx, idx, lambda _old, v=new_val: (v, v))

        if wrote:
            seq = self.reg_cur_seq.access(ctx, idx, lambda old: (old + 1, old + 1))
            # Every output derived from this packet — the forwarded packet
            # and anything the app emitted (Definition 1 allows multiple
            # outputs) — is withheld inside the replication request until
            # the update is durable.
            outputs = []
            if verdict is AppVerdict.FORWARD:
                outputs.append(pkt.to_bytes())
            outputs.extend(out.to_bytes() for out in ctx.emitted)
            ctx.emitted.clear()
            msg = RedPlaneMessage(
                seq=seq,
                msg_type=MessageType.REPL_WRITE_REQ,
                flow_key=key,
                vals=view.vals(),
                piggyback=pack_packets(outputs) if outputs else None,
            )
            req_uid = self._send_request(ctx, msg,
                                         parent_uid=pkt.meta.get("uid"))
            self._mirror_request(msg, kind="write", idx=idx, seq=seq,
                                 req_uid=req_uid)
            self._c["writes_replicated"].inc()
            ctx.consume()
            return False

        if verdict is AppVerdict.DROP:
            ctx.drop()
            return False

        # Read-only packet. If an update is still in flight, its effects
        # are not durable yet: buffer this packet through the network until
        # the latest replication request is acknowledged (§5.1).
        cur_seq = self.reg_cur_seq.read(ctx, idx)
        last_acked = self.reg_last_acked.read(ctx, idx)
        if last_acked < cur_seq:
            msg = RedPlaneMessage(
                seq=cur_seq,
                msg_type=MessageType.READ_BUFFER_REQ,
                flow_key=key,
                piggyback=pack_packets([pkt.to_bytes()]),
            )
            self._send_request(ctx, msg, parent_uid=pkt.meta.get("uid"))
            self._c["reads_buffered"].inc()
            ctx.consume()
            return False

        self._maybe_renew_lease(ctx, key, idx, now)
        self._c["fast_path_forwards"].inc()
        self._record("output", key, pkt)
        return True  # line-rate fast path: normal L3 forwarding

    def _maybe_renew_lease(
        self, ctx: PipelineContext, key: FlowKey, idx: int, now: float
    ) -> None:
        """Explicit renewal for read-centric flows, every 0.5 s (§5.3)."""
        interval = self.config.renew_interval_us

        def rmw(last: int) -> Tuple[int, int]:
            if now - last >= interval:
                return int(now), 1
            return last, 0

        due = self.reg_last_renew.access(ctx, idx, rmw)
        if due:
            msg = RedPlaneMessage(
                seq=0, msg_type=MessageType.LEASE_RENEW_REQ, flow_key=key
            )
            req_uid = self._send_request(ctx, msg,
                                         parent_uid=ctx.pkt.meta.get("uid"))
            self._renew_outstanding.add(idx)
            self._mirror_request(msg, kind="renew", idx=idx, req_uid=req_uid)
            self._c["lease_renewals"].inc()
            self.tracer.emit(
                tt.LEASE_RENEW, switch=self.switch.name, flow=str(key)
            )

    # ------------------------------------------------------------------
    # responses from the state store
    # ------------------------------------------------------------------

    def _handle_response(self, ctx: PipelineContext) -> None:
        msg = parse_protocol_packet(ctx.pkt)
        self._c["acks_received"].inc()

        if msg.msg_type is MessageType.SNAPSHOT_REPL_ACK:
            copy = self._copies_snapshot.get((msg.flow_key, msg.aux))
            if copy is not None and self._rtx_of(copy).seq <= msg.seq:
                self.mirror.release(copy)
                del self._copies_snapshot[(msg.flow_key, msg.aux)]
            if self.snapshot_ack_handler is not None:
                self.snapshot_ack_handler(msg)
            return

        idx = self._flow_idx.get(msg.flow_key)
        if idx is None:
            self._c["stale_acks_ignored"].inc()
            return
        now = self.switch.sim.now

        if msg.msg_type is MessageType.LEASE_NEW_ACK:
            self._handle_lease_new_ack(ctx, msg, idx, now)
        elif msg.msg_type is MessageType.REPL_WRITE_ACK:
            self._handle_write_ack(ctx, msg, idx, now)
        elif msg.msg_type is MessageType.LEASE_RENEW_ACK:
            self._renew_outstanding.discard(idx)
            copy = self._copy_renew.pop(idx, None)
            if copy is not None:
                self.mirror.release(copy)
            self._extend_lease(ctx, idx, now)
        elif msg.msg_type is MessageType.READ_BUFFER_ACK:
            self._handle_read_buffer_ack(ctx, msg, idx)
        else:
            self._c["stale_acks_ignored"].inc()

    def _emit_ack(
        self,
        ctx: PipelineContext,
        kind: str,
        flow: FlowKey,
        seq: int,
        rtx: RetransmitState,
        rtt_us: float,
    ) -> None:
        """Trace one released request copy with its measured RTT.

        ``uid`` is the span of the acknowledgment packet itself; ``cause``
        is the request copy whose arrival at the store produced it (the
        *winning* copy, threaded through the store via packet meta);
        ``req_uid`` is the copy the engine's RTT window was measured from
        (the latest resend — equal to ``cause`` unless an earlier copy's
        ack won the race).
        """
        meta = ctx.pkt.meta
        fields: Dict[str, object] = {
            "switch": self.switch.name,
            "kind": kind,
            "flow": str(flow),
            "seq": seq,
            "uid": meta.get("uid", 0),
            "req_uid": rtx.uid,
            "rtt_us": rtt_us,
        }
        cause = meta.get("parent_uid")
        if cause is not None:
            fields["cause"] = cause
        self._h_resends.observe(float(rtx.resends))
        self.tracer.emit(tt.RP_ACK, **fields)

    def _handle_lease_new_ack(
        self, ctx: PipelineContext, msg: RedPlaneMessage, idx: int, now: float
    ) -> None:
        copy = self._copy_lease.pop(idx, None)
        if copy is not None:
            rtx = self._rtx_of(copy)
            rtt = now - rtx.sent_at
            self._h_ack_rtt.observe(rtt)
            self._emit_ack(ctx, "lease_new", msg.flow_key, msg.seq, rtx, rtt)
            self.mirror.release(copy)
        was_pending = self.reg_lease_pending.access(ctx, idx, lambda old: (0, old))
        if was_pending:
            self.tracer.emit(
                tt.LEASE_GRANT,
                switch=self.switch.name,
                flow=str(msg.flow_key),
                seq=msg.seq,
                migrated=bool(msg.vals),
            )
            # Install the returned state (migration) or initialize fresh
            # state; never clobber state we already own. The grant's
            # snapshot was taken at the store before any of our still
            # in-flight updates applied, so when the granted seq is behind
            # our local seq the local registers are strictly newer — the
            # store converges to them as the in-flight writes land, while
            # installing the snapshot would regress both the state and the
            # sequence counter (later writes would then be discarded by
            # the store's Fig 6b guard).
            local_seq = self.reg_cur_seq.cp_read(idx)
            if msg.seq >= local_seq or mutation_active("skip_lease_install_guard"):
                if msg.vals:
                    for reg, val in zip(self.state_regs, msg.vals):
                        reg.cp_write(idx, val)
                else:
                    init = self.app.initial_state(msg.flow_key)
                    vals = init if init is not None else self.app.state_spec.default_vals()
                    for reg, val in zip(self.state_regs, vals):
                        reg.cp_write(idx, val)
                self.reg_cur_seq.cp_write(idx, msg.seq)
                self.reg_last_acked.cp_write(idx, msg.seq)
            # Control-plane register writes (state migration/init) happen
            # outside any cached path; announce them.
            self._publish_invalidation("register")
            self._extend_lease(ctx, idx, now)
            if (
                self.app.requires_control_plane_install
                and idx not in self._state_installed
            ):
                # Match-table state (e.g. NAT translation entries) must be
                # installed through the switch control plane; the held
                # packet is released only once the install completes.
                self.switch.control_plane.submit(
                    self._finish_install, idx, msg.piggyback,
                    ctx.pkt.meta.get("uid")
                )
                return
            self._state_installed.add(idx)
        else:
            self._extend_lease(ctx, idx, now)
        self._reinject_piggyback(msg.piggyback, ctx.pkt.meta.get("uid"))

    def _finish_install(self, idx: int, piggyback: Optional[bytes],
                        parent_uid: Optional[int] = None) -> None:
        self._state_installed.add(idx)
        self._reinject_piggyback(piggyback, parent_uid)

    def _handle_write_ack(
        self, ctx: PipelineContext, msg: RedPlaneMessage, idx: int, now: float
    ) -> None:
        self.reg_last_acked.access(
            ctx, idx, lambda old: (max(old, msg.seq), max(old, msg.seq))
        )
        # The ack covers every copy with seq <= acked: release them.
        copies = self._copies_write.get(idx)
        if copies:
            for seq in [s for s in copies if s <= msg.seq]:
                copy = copies.pop(seq)
                rtx = self._rtx_of(copy)
                rtt = now - rtx.sent_at
                self._h_ack_rtt.observe(rtt)
                self._emit_ack(ctx, "write", msg.flow_key, seq, rtx, rtt)
                self.mirror.release(copy)
        self._extend_lease(ctx, idx, now)
        if msg.piggyback is not None:
            resp_uid = ctx.pkt.meta.get("uid")
            for raw in unpack_packets(msg.piggyback):
                out = Packet.from_bytes(raw)
                if resp_uid is not None:
                    out.meta["parent_uid"] = resp_uid
                self._c["piggybacks_released"].inc()
                self._record("output", msg.flow_key, out)
                ctx.emit(out)

    def _handle_read_buffer_ack(
        self, ctx: PipelineContext, msg: RedPlaneMessage, idx: int
    ) -> None:
        if msg.piggyback is None:
            return
        resp_uid = ctx.pkt.meta.get("uid")
        if msg.aux == _AUX_UNPROCESSED:
            # The packet was never processed (lease was pending when it
            # arrived); run it through the pipeline again.
            self._reinject_piggyback(msg.piggyback, resp_uid)
            return
        last_acked = self.reg_last_acked.read(ctx, idx)
        if last_acked >= msg.seq:
            for raw in unpack_packets(msg.piggyback):
                out = Packet.from_bytes(raw)
                if resp_uid is not None:
                    out.meta["parent_uid"] = resp_uid
                self._c["piggybacks_released"].inc()
                self._record("output", msg.flow_key, out)
                ctx.emit(out)
        else:
            # The gating update is still unacknowledged: bounce the packet
            # through the network again.
            again = RedPlaneMessage(
                seq=msg.seq,
                msg_type=MessageType.READ_BUFFER_REQ,
                flow_key=msg.flow_key,
                piggyback=msg.piggyback,
            )
            self._send_request(ctx, again, parent_uid=resp_uid)
            self._c["reads_buffered"].inc()

    def _wrap_hold(self, raw: bytes) -> bytes:
        """Prefix held packet bytes with a fresh hold nonce (see
        ``_reinjected``); the store echoes the piggyback opaquely."""
        nonce = self.switch.sim.new_uid()
        return _HOLD_TAG + nonce.to_bytes(8, "big") + raw

    def _reinject_piggyback(self, piggyback: Optional[bytes],
                            parent_uid: Optional[int] = None) -> None:
        if piggyback is None:
            return
        for raw in unpack_packets(piggyback):
            if raw.startswith(_HOLD_TAG) and len(raw) > _HOLD_HEADER_LEN:
                nonce = raw[len(_HOLD_TAG):_HOLD_HEADER_LEN]
                raw = raw[_HOLD_HEADER_LEN:]
                # ``skip_hold_dedup`` re-introduces the double-processing
                # bug this dedup fixed, for mutation-testing the fuzzer.
                if not mutation_active("skip_hold_dedup"):
                    if nonce in self._reinjected:
                        self._c["piggyback_dups_dropped"].inc()
                        continue
                    self._reinjected.add(nonce)
            pkt = Packet.from_bytes(raw)
            pkt.meta["rp_reinjected"] = True
            if parent_uid is not None:
                pkt.meta["parent_uid"] = parent_uid
            self.switch.inject(pkt)

    # ------------------------------------------------------------------
    # request transmission and retransmission
    # ------------------------------------------------------------------

    def _send_request(
        self,
        ctx: Optional[PipelineContext],
        msg: RedPlaneMessage,
        parent_uid: Optional[int] = None,
    ) -> int:
        """Build, span-tag, trace, and emit one request packet.

        Returns the new packet's span uid. ``parent_uid`` records causality
        (the app packet that triggered the request, the timed-out copy a
        resend supersedes, the ack that bounced a read-buffer request).
        """
        shard = self.shard_map.shard_for(msg.flow_key)
        pkt = make_protocol_packet(self.switch.ip, shard.ip, msg, dport=shard.udp_port)
        uid = self.switch.sim.new_uid()
        pkt.meta["uid"] = uid
        fields: Dict[str, object] = {
            "switch": self.switch.name,
            "kind": msg.msg_type.name.lower(),
            "flow": str(msg.flow_key),
            "seq": msg.seq,
            "uid": uid,
        }
        if parent_uid is not None:
            pkt.meta["parent_uid"] = parent_uid
            fields["parent"] = parent_uid
        self.tracer.emit(tt.RP_REQUEST, **fields)
        if ctx is not None:
            ctx.emit(pkt)
        else:
            self.switch.emit_from_pipeline(pkt)
        return uid

    def send_snapshot_request(self, msg: RedPlaneMessage, retransmit: bool = True) -> None:
        """Used by the snapshot replicator (§5.4) to ship one slot value."""
        req_uid = self._send_request(None, msg)
        self.tracer.emit(
            tt.SNAPSHOT,
            switch=self.switch.name,
            slot=msg.aux,
            epoch=msg.seq,
        )
        if retransmit:
            self._mirror_request(msg, kind="snapshot", idx=-1, seq=msg.seq,
                                 req_uid=req_uid)

    def _mirror_request(
        self, msg: RedPlaneMessage, kind: str, idx: int, seq: int = 0,
        req_uid: int = 0,
    ) -> None:
        """Mirror a truncated copy of a request for retransmission (§5.2)."""
        header_only = RedPlaneMessage(
            seq=msg.seq,
            msg_type=msg.msg_type,
            flow_key=msg.flow_key,
            vals=list(msg.vals),
            piggyback=None,
            aux=msg.aux,
        )
        shard = self.shard_map.shard_for(msg.flow_key)
        pkt = make_protocol_packet(
            self.switch.ip, shard.ip, header_only, dport=shard.udp_port
        )
        # Lineage: the circulating copy descends from the request it would
        # retransmit; the mirror session records this on the copy's meta.
        if req_uid:
            pkt.meta["parent_uid"] = req_uid
        rtx = RetransmitState(
            kind=kind,
            idx=idx,
            seq=seq,
            msg=header_only,
            sent_at=self.switch.sim.now,
            timeout_us=self.config.retransmit_timeout_us,
            uid=req_uid,
        )
        copy = self.mirror.mirror(pkt, meta={"rtx": rtx})
        if kind == "write":
            self._copies_write.setdefault(idx, {})[seq] = copy
        elif kind == "lease_new":
            self._copy_lease[idx] = copy
        elif kind == "renew":
            self._copy_renew[idx] = copy
        elif kind == "snapshot":
            self._copies_snapshot[(msg.flow_key, msg.aux)] = copy

    def _mirror_pass(self, pkt: Packet, meta: Dict[str, object]) -> bool:
        """One egress pass of a circulating truncated request copy."""
        rtx = cast(RetransmitState, meta["rtx"])
        ctx = PipelineContext(pkt=pkt, now=self.switch.sim.now, block_obj=self)
        if self._mirror_acked(ctx, rtx):
            return False
        now = self.switch.sim.now
        if now - rtx.sent_at >= rtx.timeout_us:
            new_uid = self._send_request(None, rtx.msg, parent_uid=rtx.uid)
            self._c["retransmissions"].inc()
            self.tracer.emit(
                tt.RETRANSMIT,
                switch=self.switch.name,
                kind=rtx.kind,
                flow=str(rtx.msg.flow_key),
                seq=rtx.msg.seq,
                timeout_us=rtx.timeout_us,
                uid=new_uid,
                parent=rtx.uid,
            )
            # Resends chain: each supersedes the previous copy, and the
            # engine's RTT window restarts from the latest one (sent_at).
            rtx.uid = new_uid
            rtx.sent_at = now
            rtx.resends += 1
            rtx.timeout_us = min(
                rtx.timeout_us * self.config.retransmit_backoff,
                self.config.retransmit_timeout_max_us,
            )
        # Skip the no-op recirculation passes until the deadline.
        meta["next_pass_us"] = max(0.0, rtx.sent_at + rtx.timeout_us - now)
        return True

    def _mirror_acked(self, ctx: PipelineContext, rtx: RetransmitState) -> bool:
        if rtx.kind == "write":
            return self.reg_last_acked.read(ctx, rtx.idx) >= rtx.seq
        if rtx.kind == "lease_new":
            return self.reg_lease_pending.read(ctx, rtx.idx) == 0
        if rtx.kind == "renew":
            return rtx.idx not in self._renew_outstanding
        if rtx.kind == "snapshot":
            if self.snapshot_ack_handler is None:
                return True
            acked = getattr(self.snapshot_ack_handler, "is_acked", None)
            if acked is None:
                return True
            return acked(rtx.msg)
        raise AssertionError(f"unknown mirror kind {rtx.kind!r}")

    @staticmethod
    def _rtx_of(copy: MirrorCopy) -> RetransmitState:
        return cast(RetransmitState, copy.meta["rtx"])

    # ------------------------------------------------------------------
    # misc helpers
    # ------------------------------------------------------------------

    def _extend_lease(self, ctx: PipelineContext, idx: int, now: float) -> None:
        # The safety margin must leave a usable lease window: clamp it to
        # half the period (a margin >= the period would make the switch
        # disbelieve every lease it is granted and loop on re-acquisition).
        margin = min(self.config.lease_margin_us,
                     self.config.lease_period_us / 2.0)
        expiry = int(now + self.config.lease_period_us - margin)
        self.reg_lease_expiry.access(
            ctx, idx, lambda old: (max(old, expiry), max(old, expiry))
        )

    def _flow_index(self, key: FlowKey) -> int:
        idx = self._flow_idx.get(key)
        if idx is None:
            if self._free_indices:
                idx = self._free_indices.pop()
            elif self._next_idx < self.config.max_flows:
                idx = self._next_idx
                self._next_idx += 1
            else:
                raise RuntimeError(
                    f"{self.switch.name}: flow table full "
                    f"({self.config.max_flows} flows)"
                )
            self._flow_idx[key] = idx
            self._idx_key[idx] = key
            self._g_flow_table.set(len(self._flow_idx))
        return idx

    def reclaim_idle_flows(self, idle_us: Optional[float] = None) -> int:
        """Free flow-table entries whose lease lapsed long ago.

        The per-flow SRAM is a fixed-size resource (Table 2 sizes it at
        ``max_flows``); a production deployment reclaims entries for dead
        flows from the control plane. An entry is reclaimable once its
        lease has been expired for ``idle_us`` (default: one lease period
        — by then the store would re-grant from scratch anyway) and it has
        no in-flight protocol activity. Returns the number reclaimed.
        """
        if idle_us is None:
            idle_us = self.config.lease_period_us
        now = self.switch.sim.now
        reclaimed = 0
        for key, idx in list(self._flow_idx.items()):
            expiry = self.reg_lease_expiry.cp_read(idx)
            busy = (
                self.reg_lease_pending.cp_read(idx) == 1
                or idx in self._copy_lease
                or idx in self._copy_renew
                or self._copies_write.get(idx)
                or self.reg_last_acked.cp_read(idx)
                < self.reg_cur_seq.cp_read(idx)
            )
            if busy or expiry + idle_us > now:
                continue
            # Scrub the entry: registers back to defaults, index recycled.
            self.reg_lease_expiry.cp_write(idx, 0)
            self.reg_cur_seq.cp_write(idx, 0)
            self.reg_last_acked.cp_write(idx, 0)
            self.reg_lease_pending.cp_write(idx, 0)
            self.reg_last_renew.cp_write(idx, 0)
            for reg in self.state_regs:
                reg.cp_write(idx, 0)
            self._state_installed.discard(idx)
            del self._flow_idx[key]
            del self._idx_key[idx]
            self._free_indices.append(idx)
            reclaimed += 1
        if reclaimed:
            self._c_reclaimed.inc(reclaimed)
            self._publish_invalidation("lease")
        self._g_flow_table.set(len(self._flow_idx))
        return reclaimed

    def _publish_invalidation(self, scope: str) -> None:
        """Tell an installed fast path that compiled flow state is stale."""
        fp = self.switch.sim.fastpath
        if fp is not None:
            fp.bus.publish(scope)

    @staticmethod
    def _is_protocol_packet(pkt: Packet) -> bool:
        return (
            isinstance(pkt.l4, UDPHeader)
            and (pkt.l4.dport in _PROTOCOL_PORTS or pkt.l4.sport in _PROTOCOL_PORTS)
        )

    def _record(self, kind: str, key: FlowKey, pkt: Packet) -> None:
        if not self.config.record_history:
            return
        trace_id = pkt.ip.identification if pkt.ip is not None else 0
        self.history.append(
            HistoryEvent(
                kind=kind,
                key=key,
                trace_id=trace_id,
                time=self.switch.sim.now,
                switch=self.switch.name,
            )
        )

    def shutdown(self) -> None:
        """Release every circulating mirror copy (clean teardown).

        Use when an experiment ends while requests are still outstanding
        (e.g. the store was failed on purpose): otherwise the
        retransmitter keeps the event loop alive indefinitely.
        """
        for copies in self._copies_write.values():
            for copy in copies.values():
                self.mirror.release(copy)
        self._copies_write.clear()
        for copy in list(self._copy_lease.values()):
            self.mirror.release(copy)
        self._copy_lease.clear()
        for copy in list(self._copy_renew.values()):
            self.mirror.release(copy)
        self._copy_renew.clear()
        for copy in list(self._copies_snapshot.values()):
            self.mirror.release(copy)
        self._copies_snapshot.clear()

    # -- introspection used by tests and experiments ------------------------

    def flow_state(self, key: FlowKey) -> Optional[List[int]]:
        """Current switch-local state values for a flow (None if unknown)."""
        idx = self._flow_idx.get(key)
        if idx is None:
            return None
        return [reg.cp_read(idx) for reg in self.state_regs]

    def lease_valid(self, key: FlowKey) -> bool:
        idx = self._flow_idx.get(key)
        if idx is None:
            return False
        return self.reg_lease_expiry.cp_read(idx) > self.switch.sim.now

    def retransmit_states(self) -> List[RetransmitState]:
        """Backoff state of every circulating request copy, oldest first."""
        states: List[RetransmitState] = []
        for copies in self._copies_write.values():
            states.extend(self._rtx_of(c) for c in copies.values())
        states.extend(self._rtx_of(c) for c in self._copy_lease.values())
        states.extend(self._rtx_of(c) for c in self._copy_renew.values())
        states.extend(self._rtx_of(c) for c in self._copies_snapshot.values())
        return sorted(states, key=lambda s: (s.sent_at, s.kind, s.idx, s.seq))

    def expire_lease_now(self, key: Optional[FlowKey] = None) -> int:
        """Chaos hook: make the switch-side lease view lapse immediately.

        Models a local clock glitch or a renewal that never landed. The
        switch-side expiry is already conservative (margin below the
        store's grant, §5.3), so forcing it early can only cause extra
        lease re-acquisition traffic — the lease-race paths — never a
        safety violation; the store still arbitrates ownership. Returns
        the number of flow entries whose lease was expired.
        """
        if key is not None:
            idx = self._flow_idx.get(key)
            targets = [] if idx is None else [idx]
        else:
            targets = list(self._flow_idx.values())
        now = self.switch.sim.now
        expired = 0
        for idx in targets:
            if self.reg_lease_expiry.cp_read(idx) > now:
                self.reg_lease_expiry.cp_write(idx, int(now))
                expired += 1
        if expired:
            self._publish_invalidation("lease")
        return expired

    def resource_usage(self) -> Dict[str, float]:
        """RedPlane's *additional* ASIC resources (Table 2 inventory).

        Per-flow SRAM: 96 register bits (lease expiry, current seq, last
        acked — packed as in the prototype) plus a 128-bit flow-index table
        entry. TCAM: two 4096-entry range-match tables (ack processing and
        request-timeout checks). The fixed-function counts (ALUs, gateways,
        VLIW slots, crossbar and hash bits) come from the block inventory.
        """
        flows = self.config.max_flows
        usage = {
            "sram_bits": flows * (96 + 128) + 1024 * 152,
            "tcam_bits": 2 * 4096 * 96,
            "meter_alus": 4,
            "gateways": 19,
            "vliw_instructions": 21,
            "match_crossbar_bits": 976,
            "hash_bits": 185,
        }
        # Table 2 reads these from the registry: one gauge per resource,
        # labeled by switch, so resource numbers have a single source.
        metrics = self.switch.sim.metrics
        for resource, amount in usage.items():
            metrics.gauge(
                f"redplane.resource.{resource}", switch=self.switch.name
            ).set(amount)
        return usage

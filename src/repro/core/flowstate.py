"""Per-flow application state: declaration and access tracking.

An application declares its per-flow state as a :class:`StateSpec` — an
ordered list of named 32-bit fields (the granularity RedPlane replicates,
matching the ``Val1..Valn`` slots of the protocol header, Fig 4). At packet
time the engine hands the app a :class:`FlowStateView`; the view records
whether the packet read or wrote state, which is what decides the protocol
action (fast-path forward vs. synchronous replication, §5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

U32_MASK = 0xFFFFFFFF


@lru_cache(maxsize=None)
def _index_map(spec: "StateSpec") -> Dict[str, int]:
    """Shared name->slot map per spec (specs are frozen and few)."""
    return {name: i for i, (name, _d) in enumerate(spec.fields)}


@dataclass(frozen=True)
class StateSpec:
    """Declaration of an app's per-flow state layout."""

    fields: Tuple[Tuple[str, int], ...]  # (name, default_value)

    @classmethod
    def of(cls, *fields: Tuple[str, int]) -> "StateSpec":
        names = [name for name, _default in fields]
        if len(set(names)) != len(names):
            raise ValueError("duplicate state field names")
        return cls(fields=tuple(fields))

    @property
    def num_vals(self) -> int:
        return len(self.fields)

    def default_vals(self) -> List[int]:
        return [default & U32_MASK for _name, default in self.fields]

    def index_of(self, name: str) -> int:
        for i, (field_name, _default) in enumerate(self.fields):
            if field_name == name:
                return i
        raise KeyError(f"unknown state field {name!r}")

    def names(self) -> List[str]:
        return [name for name, _default in self.fields]


class FlowStateView:
    """Read/write access to one flow's state values, with dirty tracking."""

    __slots__ = ("spec", "_vals", "_index", "read_occurred", "write_occurred")

    def __init__(self, spec: StateSpec, vals: Sequence[int]) -> None:
        if len(vals) != spec.num_vals:
            raise ValueError(
                f"state has {len(vals)} values, spec declares {spec.num_vals}"
            )
        self.spec = spec
        self._vals = [v & U32_MASK for v in vals]
        self._index = _index_map(spec)
        self.read_occurred = False
        self.write_occurred = False

    def get(self, name: str) -> int:
        self.read_occurred = True
        return self._vals[self._index[name]]

    def set(self, name: str, value: int) -> None:
        self.write_occurred = True
        self._vals[self._index[name]] = value & U32_MASK

    def increment(self, name: str, amount: int = 1) -> int:
        """Read-modify-write, e.g. a per-flow counter bump."""
        self.read_occurred = True
        self.write_occurred = True
        i = self._index[name]
        self._vals[i] = (self._vals[i] + amount) & U32_MASK
        return self._vals[i]

    def vals(self) -> List[int]:
        return list(self._vals)

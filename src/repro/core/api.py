"""Developer-facing RedPlane API (Fig 3 / Appendix B).

Where the P4 prototype has developers ``#include "redplane_core.p4"`` and
instantiate ``RedPlaneIngress``/``RedPlaneEgress`` around their app, here
they call :func:`attach_redplane` on a switch with their
:class:`~repro.core.app.InSwitchApp`, and optionally
:func:`attach_snapshot_replication` for bounded-inconsistency structures.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.net import constants
from repro.net.packet import FlowKey
from repro.switch.asic import SwitchASIC
from repro.core.app import InSwitchApp
from repro.core.engine import RedPlaneConfig, RedPlaneEngine, RedPlaneMode
from repro.core.snapshot import LazySnapshotArray, SnapshotReplicator
from repro.statestore.netchain import NetChainBackend, NetChainStoreBlock
from repro.statestore.server import StateAllocator
from repro.statestore.sharding import ShardMap


def attach_redplane(
    switch: SwitchASIC,
    app: InSwitchApp,
    shard_map: ShardMap,
    config: Optional[RedPlaneConfig] = None,
) -> RedPlaneEngine:
    """Make ``app`` fault tolerant on ``switch``.

    Appends the RedPlane protocol engine (wrapping the app) to the
    switch's pipeline and accounts its ASIC resources. Returns the engine
    for introspection.
    """
    engine = RedPlaneEngine(switch, app, shard_map, config)
    switch.add_block(engine)
    switch.resources.register(app.resource_usage())
    return engine


def attach_snapshot_replication(
    engine: RedPlaneEngine,
    structures: Dict[FlowKey, LazySnapshotArray],
    period_us: float,
    start: bool = True,
) -> SnapshotReplicator:
    """Enable bounded-inconsistency snapshot replication (§5.4).

    ``structures`` maps a store partition key (e.g. a per-VLAN pseudo flow
    key) to the lazy-snapshot array holding that partition's state. The
    replicator block is inserted *before* the engine so it claims the
    packet-generator's snapshot-read packets.
    """
    replicator = SnapshotReplicator(engine, period_us, structures)
    engine.switch.pipeline.blocks.insert(0, replicator)
    if start:
        replicator.start()
    return replicator


def attach_netchain_store(
    switch: SwitchASIC,
    backend: Optional[NetChainBackend] = None,
    lease_period_us: float = constants.LEASE_PERIOD_US,
    allocator: Optional[StateAllocator] = None,
) -> NetChainStoreBlock:
    """Serve a shard's state from ``switch`` itself, NetChain-style.

    Instead of a server-based :class:`~repro.statestore.server.StateStoreNode`,
    the shard's records live in register arrays on ``switch`` and every
    request is answered from the pipeline in sub-RTT time — the design
    point RedPlane §8 contrasts against: faster, but the state is SRAM
    and vanishes on a switch crash (``recover()`` finds nothing).

    Appends the store block to the switch pipeline and accounts its SRAM
    in the switch's resource ledger. Returns the block for introspection.
    """
    block = NetChainStoreBlock(
        switch, backend=backend, lease_period_us=lease_period_us, allocator=allocator
    )
    switch.add_block(block)
    return block

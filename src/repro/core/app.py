"""The developer-facing application interface.

A stateful in-switch application (Definition 1: a transition function
``(I, S) -> (O*, S')``) subclasses :class:`InSwitchApp` and implements
:meth:`process`. The RedPlane engine mediates every access to per-flow
state through a :class:`~repro.core.flowstate.FlowStateView`, which is how
it learns whether a packet's processing read or wrote state — the fact
that drives the replication protocol.

This mirrors the P4 API of Appendix B: the developer's control block is
sandwiched between ``RedPlaneIngress`` and ``RedPlaneEgress``; here the
sandwich is :class:`repro.core.engine.RedPlaneEngine` wrapping ``process``.
"""

from __future__ import annotations

import enum
from typing import Optional, TYPE_CHECKING

from repro.net.packet import FlowKey, Packet
from repro.core.flowstate import FlowStateView, StateSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.switch.asic import SwitchASIC
    from repro.switch.pipeline import PipelineContext


class AppVerdict(enum.Enum):
    """What the application wants done with the (possibly rewritten) packet."""

    FORWARD = "forward"
    DROP = "drop"


class InSwitchApp:
    """Base class for stateful in-switch applications."""

    #: Short identifier used in experiment output.
    name = "app"

    #: Per-flow state layout; replicated by RedPlane.
    state_spec: StateSpec = StateSpec.of()

    #: True if restoring this app's state on a switch requires a
    #: control-plane table installation (e.g. a NAT translation entry);
    #: adds slow-path latency to state initialization/migration (§5.1).
    requires_control_plane_install = False

    #: What :meth:`partition_key` reads from the packet — the fast-path
    #: flow cache keys compiled entries by exactly these inputs.
    #: ``"flow"``: headers only (5-tuple + VLAN); ``"packet"``: headers
    #: plus payload (apps that parse encapsulations or service requests
    #: out of the payload must declare this — verify rule RP141);
    #: ``None``: opt out of flow caching entirely (partition decisions
    #: that depend on mutable app state).
    partition_inputs: Optional[str] = "flow"

    #: Declared partition class for the sharded runner, one of
    #: ``"flow_local"`` / ``"flow_hash"`` / ``"global"`` — or ``None`` to
    #: accept what the partition analyzer (verify pass 5, RS4xx) infers.
    #: A declaration may only *relax* the inferred class (an app whose
    #: state two flows can touch declares ``"global"``); declaring a
    #: tighter class than inference proves is an RS402 error.
    shard_class: Optional[str] = None

    #: Mandatory for ``shard_class = "global"`` (RS403): why the state is
    #: genuinely cross-flow, recorded verbatim in the shard plan.
    shard_reason: Optional[str] = None

    def partition_key(self, pkt: Packet) -> Optional[FlowKey]:
        """The state-partition key for this packet.

        Return None for traffic the application does not process (it is
        forwarded untouched). The default partitions by the direction-
        independent IP 5-tuple so both directions of a connection share
        state; override for VLAN-, user-, or object-based partitioning.
        """
        if pkt.ip is None:
            return None
        return pkt.flow_key().canonical()

    def process(
        self,
        state: FlowStateView,
        pkt: Packet,
        ctx: "PipelineContext",
        switch: "SwitchASIC",
    ) -> AppVerdict:
        """Process one packet against its flow state.

        May rewrite packet headers in place and read/update ``state``. The
        engine replicates state changes before the packet (or anything
        derived from it) leaves the switch.
        """
        raise NotImplementedError

    def initial_state(self, key: FlowKey) -> Optional[list]:
        """Switch-local initial state for a brand-new flow.

        Return None (default) to use ``state_spec`` defaults. Ignored when
        the deployment configures a store-side allocator (global state such
        as a NAT port pool is owned by the store, §3).
        """
        return None

    def resource_usage(self) -> dict:
        """Baseline ASIC resources of the app itself (Table 2 context)."""
        return {}

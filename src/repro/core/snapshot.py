"""Bounded-inconsistency mode: lazy snapshotting + periodic replication.

Write-centric applications (sketches, Bloom filters) cannot afford a
synchronous replication round trip per packet. RedPlane instead replicates
*consistent snapshots* asynchronously every ``T_snap`` (§4.4, §5.4): upon
failure at most the last ``epsilon`` seconds of updates are lost, but the
recovered state is an actual state of the system.

The hardware obstacle is that P4 allows one entry access per register
array per packet, so an array cannot be copied atomically. Algorithm 1's
*lazy snapshotting* solves it with two interleaved copies per index
(``pair<int, int>``), a 1-bit active-buffer flag, and a 1-bit per-index
"last updated" array; copies synchronize lazily as traffic touches them.
:class:`LazySnapshotArray` is a faithful port of that pseudocode.

Replication itself uses the ASIC packet generator: every period it emits
one snapshot-read packet per slot; :class:`SnapshotReplicator` turns each
into a ``SNAPSHOT_REPL_REQ`` carrying the frozen slot value, sequenced by a
snapshot *epoch* and retransmitted through the same mirror machinery as
synchronous updates.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.net.packet import FlowKey, Packet
from repro.switch.pipeline import ControlBlock, PipelineContext
from repro.switch.registers import PairedRegisterArray, RegisterArray
from repro.core.engine import RedPlaneEngine
from repro.core.protocol import MessageType, RedPlaneMessage


class LazySnapshotArray:
    """Two interleaved copies of a register array with lazy sync (Alg 1)."""

    def __init__(self, name: str, size: int, width_bits: int = 32) -> None:
        self.name = name
        self.size = size
        # pair<int,int> data slots plus the two metadata registers.
        self.data = PairedRegisterArray(f"{name}.data", size, width_bits)
        self.active_flag = RegisterArray(f"{name}.active", 1, 1)
        self.last_updated = RegisterArray(f"{name}.last_updated", size, 1)
        self.snapshots_taken = 0

    def sram_bits(self) -> int:
        """Total SRAM of the structure: the paired data slots *and* the
        two metadata registers. Apps must declare this figure (RP132
        audits declarations against it), not just the data bits."""
        return int(
            self.data.sram_bits()
            + self.active_flag.sram_bits()
            + self.last_updated.sram_bits()
        )

    # -- regular traffic -------------------------------------------------------

    def update(self, ctx: PipelineContext, index: int, delta: int) -> int:
        """SKETCH_UPDATE packet: add ``delta`` to the active copy.

        The first packet to touch an index after a snapshot flip first
        copies the inactive (frozen) value into the active copy, so the
        frozen copy is preserved exactly while traffic keeps flowing.
        """
        active = self.active_flag.read(ctx, 0)
        prev = self.last_updated.access(ctx, index, lambda old: (active, old))
        first_touch = prev != active

        def rmw(lo: int, hi: int) -> Tuple[int, int, int]:
            bufs = [lo, hi]
            if first_touch:
                bufs[active] = bufs[1 - active]
            bufs[active] += delta
            return bufs[0], bufs[1], bufs[active]

        return self.data.access(ctx, index, rmw)

    def test_and_set(self, ctx: PipelineContext, index: int) -> int:
        """Set the slot to 1 and return its previous value (one access).

        The Bloom-filter building block: membership test and insert fused
        into a single stateful-ALU operation, with the same lazy-copy
        behaviour as :meth:`update`.
        """
        active = self.active_flag.read(ctx, 0)
        prev_buf = self.last_updated.access(ctx, index, lambda old: (active, old))
        first_touch = prev_buf != active

        def rmw(lo: int, hi: int) -> Tuple[int, int, int]:
            bufs = [lo, hi]
            if first_touch:
                bufs[active] = bufs[1 - active]
            prev = bufs[active]
            bufs[active] = 1
            return bufs[0], bufs[1], prev

        return self.data.access(ctx, index, rmw)

    # -- snapshot reads (generated packets) -------------------------------------

    def snapshot_read(self, ctx: PipelineContext, index: int) -> int:
        """SNAPSHOT_READ packet: return the frozen value of ``index``.

        The read for index 0 flips the active buffer, starting a new
        snapshot; all reads return values from the now-inactive copy.
        """
        if index == 0:
            active = self.active_flag.access(ctx, 0, lambda old: (1 - old, 1 - old))
            self.snapshots_taken += 1
        else:
            active = self.active_flag.read(ctx, 0)
        prev = self.last_updated.access(ctx, index, lambda old: (active, old))
        first_touch = prev != active

        def rmw(lo: int, hi: int) -> Tuple[int, int, int]:
            bufs = [lo, hi]
            if first_touch:
                # Synchronize, then read: both copies now hold the frozen
                # value, so either is the snapshot.
                bufs[active] = bufs[1 - active]
                return bufs[0], bufs[1], bufs[active]
            # This index was already touched since the flip; the inactive
            # copy holds the frozen value.
            return bufs[0], bufs[1], bufs[1 - active]

        return self.data.access(ctx, index, rmw)

    # -- control-plane helpers (tests / recovery) --------------------------------

    def cp_live_values(self) -> List[int]:
        """The logical (most-recent) value of every slot."""
        active = self.active_flag.cp_read(0)
        out = []
        for i in range(self.size):
            lo, hi = self.data.cp_read(i)
            bufs = [lo, hi]
            touched = self.last_updated.cp_read(i) == active
            out.append(bufs[active] if touched else bufs[1 - active])
        return out

    def cp_install(self, values: List[int]) -> None:
        """Restore slot values (state recovery on a replacement switch)."""
        if len(values) != self.size:
            raise ValueError("value count does not match array size")
        for i, val in enumerate(values):
            self.data.cp_write(i, val, val)
            self.last_updated.cp_write(i, self.active_flag.cp_read(0))


class SnapshotReplicator(ControlBlock):
    """Periodic asynchronous snapshot replication of lazy arrays (§5.4).

    Registered as a pipeline block ahead of the protocol engine: it claims
    the snapshot-read packets emitted by the ASIC packet generator, reads
    the frozen slot value, and ships it to the state store. Each snapshot
    round is an *epoch*; the store applies a slot only if its epoch is not
    older than what it already has, and the mirror-based retransmitter
    keeps resending a slot until its epoch is acknowledged.
    """

    name = "snapshot-replicator"

    def __init__(
        self,
        engine: RedPlaneEngine,
        period_us: float,
        structures: Optional[Dict[FlowKey, LazySnapshotArray]] = None,
    ) -> None:
        self.engine = engine
        self.switch = engine.switch
        self.period_us = period_us
        self.structures: Dict[FlowKey, LazySnapshotArray] = dict(structures or {})
        self.epoch = 0
        #: (store key, slot) -> unacknowledged epoch.
        self._outstanding: Dict[Tuple[FlowKey, int], int] = {}
        self.slots_replicated = 0
        self.acks = 0
        self.stopped = False
        #: Simulated time of the last fully acknowledged snapshot epoch;
        #: used to monitor the inconsistency bound epsilon (§5.5).
        self.last_complete_snapshot_at: Optional[float] = None
        self._epoch_pending: Dict[int, int] = {}
        # The replicator itself is the engine's snapshot-ack handler: it is
        # called for each SNAPSHOT_REPL_ACK and consulted (``is_acked``) by
        # the mirror-based retransmitter.
        engine.snapshot_ack_handler = self

    def add_structure(self, key: FlowKey, array: LazySnapshotArray) -> None:
        self.structures[key] = array

    # -- pktgen wiring --------------------------------------------------------

    def start(self) -> None:
        """Configure and start the ASIC packet generator."""
        slots = [
            (key, i)
            for key, array in sorted(
                self.structures.items(), key=lambda kv: kv[0].pack()
            )
            for i in range(array.size)
        ]

        def builder(i: int) -> Optional[Packet]:
            key, slot = slots[i]
            pkt = Packet()
            pkt.meta["snapshot_read"] = (key, slot, i == 0)
            return pkt

        self.switch.pktgen.configure(self.period_us, len(slots), builder)
        self.switch.pktgen.start()

    def stop(self) -> None:
        """Stop replicating: no new snapshot requests, and outstanding
        copies are considered settled (their retransmitter drops them on
        the next pass)."""
        self.stopped = True
        self.switch.pktgen.stop()
        self._outstanding.clear()

    # -- pipeline block --------------------------------------------------------

    def process(self, ctx: PipelineContext, switch) -> bool:
        marker = ctx.pkt.meta.get("snapshot_read")
        if marker is None:
            return True
        if self.stopped:
            # A straggler from the final generator batch: consume it
            # without emitting further replication requests.
            ctx.consume()
            return False
        key, slot, batch_start = marker
        if batch_start:
            self.epoch += 1
            self._epoch_pending[self.epoch] = sum(
                array.size for array in self.structures.values()
            )
            fp = self.switch.sim.fastpath
            if fp is not None:
                # Snapshot rotation: compiled flow-cache state must not
                # straddle an epoch boundary.
                fp.bus.publish("snapshot")
        array = self.structures[key]
        value = array.snapshot_read(ctx, slot)
        msg = RedPlaneMessage(
            seq=self.epoch,
            msg_type=MessageType.SNAPSHOT_REPL_REQ,
            flow_key=key,
            vals=[value],
            aux=slot,
        )
        self._outstanding[(key, slot)] = self.epoch
        self.engine.send_snapshot_request(msg)
        self.slots_replicated += 1
        ctx.consume()
        return False

    # -- acknowledgment handling --------------------------------------------------

    def __call__(self, msg: RedPlaneMessage) -> None:
        self._on_ack(msg)

    def _on_ack(self, msg: RedPlaneMessage) -> None:
        self.acks += 1
        slot_key = (msg.flow_key, msg.aux)
        cur = self._outstanding.get(slot_key)
        if cur is not None and msg.seq >= cur:
            del self._outstanding[slot_key]
            remaining = self._epoch_pending.get(cur)
            if remaining is not None:
                remaining -= 1
                if remaining <= 0:
                    del self._epoch_pending[cur]
                    self.last_complete_snapshot_at = self.switch.sim.now
                else:
                    self._epoch_pending[cur] = remaining

    def is_acked(self, msg: RedPlaneMessage) -> bool:
        """Retransmission predicate: is this mirrored copy obsolete?"""
        if self.stopped:
            return True
        cur = self._outstanding.get((msg.flow_key, msg.aux))
        return cur is None or cur != msg.seq

    # -- inconsistency bound -----------------------------------------------------

    def staleness_us(self) -> float:
        """Time since the last fully replicated snapshot (the epsilon)."""
        if self.last_complete_snapshot_at is None:
            return float("inf")
        return self.switch.sim.now - self.last_complete_snapshot_at

"""Fig 13: in-switch KV store throughput vs. update ratio and store count.

Paper result: with uniformly random keys, throughput falls as the update
ratio grows because every update is a synchronous replication; adding
state-store servers (1 -> 2 -> 3) raises the write-bound floor roughly
linearly, and the knee where the store becomes the bottleneck moves right.

As with Fig 12, the headline series is the fluid model (validated here by
a scaled packet-level sweep with a finite-capacity store).
"""

from __future__ import annotations

import pytest

from repro import Simulator, deploy
from repro.analysis import fig13_series, kv_throughput_mpps
from repro.apps import KvStoreApp, install_kv_routes
from repro.workloads.traces import kv_trace

from _bench_utils import emit, print_header, print_rows

RATIOS = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]


def measure_scaled(update_ratio: float, num_stores: int,
                   packets: int = 1200, gap_us: float = 2.0,
                   num_keys: int = 256) -> float:
    """Steady-state replies per us with 0.25 Mpps of store capacity each.

    Leases are pre-warmed (one read per key at unthrottled store speed)
    so the measurement reflects the steady state, not the cold-start
    lease storm: the paper's runs are minutes long.
    """
    sim = Simulator(seed=13)
    dep = deploy(sim, KvStoreApp, num_shards=num_stores, chain_length=1)
    install_kv_routes(dep.bed)
    e1 = dep.bed.externals[0]
    replies = []
    e1.default_handler = lambda pkt: replies.append(sim.now)
    for event in kv_trace(num_keys * 2, num_keys, e1.ip, 0.0, seed=99):
        sim.schedule(event.trace_id * 5.0, e1.send, event.pkt)
    sim.run_until_idle()
    replies.clear()

    for store in dep.stores:
        store.service_time_us = 4.0  # 0.25 Mpps per store server
    start = sim.now
    for event in kv_trace(packets, num_keys, e1.ip, update_ratio, seed=13):
        sim.schedule(event.trace_id * gap_us, e1.send, event.pkt)
    horizon = packets * gap_us
    sim.run(until=start + horizon * 4 + 200_000)
    in_window = [t for t in replies if t <= start + horizon + 100.0]
    return len(in_window) / horizon


def test_fig13(run_once):
    def experiment():
        analytic = fig13_series(RATIOS, store_counts=[1, 2, 3])
        measured = {
            stores: [measure_scaled(u, stores) for u in (0.0, 0.5, 1.0)]
            for stores in (1, 3)
        }
        return analytic, measured

    analytic, measured = run_once(experiment)
    print_header("Fig 13 — KV-store throughput vs update ratio (Mpps)")
    rows = []
    for i, ratio in enumerate(RATIOS):
        rows.append({
            "update ratio": ratio,
            "1 store": analytic[1][i],
            "2 stores": analytic[2][i],
            "3 stores": analytic[3][i],
        })
    print_rows(rows, ["update ratio", "1 store", "2 stores", "3 stores"])
    emit(f"scaled packet-level (0.25 Mpps/store, update ratios 0/0.5/1): "
          f"1 store={ [round(x, 3) for x in measured[1]] }, "
          f"3 stores={ [round(x, 3) for x in measured[3]] }")
    emit("paper: adding store servers raises write-heavy throughput; "
          "read-only ceiling independent of stores")

    from repro.analysis import ascii_series

    emit()
    emit(ascii_series(
        {
            f"{n} store(s)": list(zip(RATIOS, analytic[n]))
            for n in (1, 2, 3)
        },
        x_label="update ratio",
        y_label="Mpps",
    ))

    # Monotone decreasing in update ratio; scaling with store count.
    for stores in (1, 2, 3):
        series = analytic[stores]
        assert all(a >= b for a, b in zip(series, series[1:]))
    assert analytic[3][-1] == pytest.approx(3 * analytic[1][-1])
    assert analytic[1][0] == analytic[3][0]

    # Packet-level shape: read-only unaffected by store count; write-heavy
    # throughput grows with stores and is store-bound.
    for stores in (1, 3):
        assert measured[stores][0] > 0.45        # reads at offered load
    assert measured[3][2] > 1.5 * measured[1][2]  # stores scale writes
    assert measured[1][2] < 0.35                  # 1 store saturates
    assert measured[3][1] > measured[1][1]        # and at u=0.5 as well

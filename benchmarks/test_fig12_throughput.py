"""Fig 12: data-plane throughput with and without RedPlane, per app.

Paper result (64 B packets, three senders, ~122.5 Mpps aggregation-switch
forwarding bound): read-centric apps (NAT, firewall, LB) and async
HH-detection keep the full line rate with RedPlane; EPC-SGW is slightly
lower (packets buffered through the network during signaling replication);
Sync-Counter drops to roughly half, bottlenecked by the state store.

Python cannot drive 122.5 Mpps packet-by-packet, so — like the paper's own
"analytical model-based simulation" (§7.2) — the headline rows come from
the fluid model, and a scaled-down packet-level run with a finite-capacity
store validates the shape (the sync app saturates at the store's service
rate while the read app tracks the offered load).
"""

from __future__ import annotations

import pytest

from repro import Simulator, deploy
from repro.analysis import APP_PROFILES, fig12_rows, throughput_mpps
from repro.apps import NatApp, install_nat_routes
from repro.apps.counter import SyncCounterApp
from repro.net.packet import Packet
from repro.workloads.traces import five_tuple_trace

from _bench_utils import emit, print_header, print_rows


def measure_scaled_delivery(app_factory, offered_gap_us: float,
                            store_service_us: float, routes=None,
                            packets: int = 1500):
    """Deliverable fraction at a given offered rate with a slow store."""
    sim = Simulator(seed=9)
    dep = deploy(sim, app_factory, num_shards=1, chain_length=1)
    if routes:
        routes(dep.bed)
    for store in dep.stores:
        store.service_time_us = store_service_us
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    delivered = []
    s11.default_handler = lambda pkt: delivered.append(sim.now)
    for i in range(packets):
        pkt = Packet.udp(e1.ip, s11.ip, 6000 + (i % 32), 7777)
        sim.schedule(i * offered_gap_us, e1.send, pkt)
    horizon = packets * offered_gap_us
    sim.run(until=horizon * 3 + 200_000)
    # Delivered rate over the offered window (packets per us).
    in_window = [t for t in delivered if t <= horizon + 100.0]
    return len(in_window) / horizon


def test_fig12(run_once):
    def experiment():
        rows = fig12_rows(num_shards=3)
        # Scaled validation: store service 5 us (0.2 Mpps), offered 0.5 Mpps.
        sync_rate = measure_scaled_delivery(SyncCounterApp, offered_gap_us=2.0,
                                            store_service_us=5.0)
        nat_rate = measure_scaled_delivery(NatApp, offered_gap_us=2.0,
                                           store_service_us=5.0,
                                           routes=install_nat_routes)
        return rows, sync_rate, nat_rate

    rows, sync_rate, nat_rate = run_once(experiment)
    print_header("Fig 12 — data-plane throughput w/ and w/o RedPlane (Mpps)")
    print_rows(
        [{"application": r["app"], "without RedPlane": r["without_mpps"],
          "with RedPlane": r["with_mpps"]} for r in rows],
        ["application", "without RedPlane", "with RedPlane"],
    )
    offered = 0.5
    emit(f"scaled packet-level check (offered {offered} Mpps, store capacity "
          f"0.2 Mpps): sync-counter delivered {sync_rate:.3f} Mpps, "
          f"NAT delivered {nat_rate:.3f} Mpps")
    emit("paper: read-centric & HH unchanged at 122.5; EPC slightly lower; "
          "Sync-Counter ~half (state-store bound)")

    by_app = {r["app"]: r for r in rows}
    for name in ("nat", "firewall", "load-balancer", "hh-detector"):
        assert by_app[name]["with_mpps"] == pytest.approx(
            by_app[name]["without_mpps"]
        )
    assert 0.90 < (by_app["epc-sgw"]["with_mpps"]
                   / by_app["epc-sgw"]["without_mpps"]) < 1.0
    ratio = by_app["sync-counter"]["with_mpps"] / by_app["sync-counter"]["without_mpps"]
    assert 0.4 < ratio < 0.6  # "nearly half"

    # Packet-level shape: the sync app saturates at the store's capacity,
    # the read-centric app tracks the offered load.
    assert sync_rate < 0.30          # bound by the 0.2 Mpps store
    assert nat_rate > 0.45           # tracks the 0.5 Mpps offered load
    assert nat_rate / sync_rate > 1.6

"""Fig 11: snapshot-replication bandwidth vs. frequency and sketch count.

Paper result: bandwidth grows linearly in the snapshot frequency
(32-1024 Hz on the x-axis) and in the number of sketches (3/4/5 lines);
at a 1 ms period (1 kHz) with 3 sketches it consumes 34.16 Mbps — the
accounting counts RedPlane header bytes (~22-26 B per slot message).

We print the analytic series (the paper's own accounting) and validate it
against a packet-level simulation of the HH detector at two frequencies.
"""

from __future__ import annotations

import pytest

from repro import RedPlaneConfig, Simulator, deploy
from repro.analysis import fig11_series, snapshot_bandwidth_mbps
from repro.apps import HeavyHitterApp
from repro.core.api import attach_snapshot_replication
from repro.core.engine import RedPlaneMode

from _bench_utils import emit, print_header, print_rows

FREQUENCIES = [32, 64, 128, 256, 512, 1024]
SKETCHES = [3, 4, 5]


def measure_simulated_mbps(freq_hz: float, num_rows: int = 3,
                           duration_us: float = 50_000.0) -> float:
    """Packet-level measurement of snapshot protocol-header bandwidth."""
    sim = Simulator(seed=3)
    dep = deploy(
        sim,
        lambda: HeavyHitterApp(vlans=[10], threshold=10 ** 6, depth=num_rows),
        config=RedPlaneConfig(mode=RedPlaneMode.BOUNDED_INCONSISTENCY),
    )
    agg = dep.bed.aggs[0]
    attach_snapshot_replication(
        dep.engines[agg.name], dep.apps[agg.name].snapshot_structures(),
        period_us=1e6 / freq_hz,
    )
    sim.run(until=duration_us)
    agg.pktgen.stop()
    sim.run_until_idle()
    bits = agg.bytes_protocol_out * 8
    return bits / duration_us  # bits per us == Mbps


def test_fig11(run_once):
    def experiment():
        analytic = fig11_series(SKETCHES, FREQUENCIES)
        measured = {
            freq: measure_simulated_mbps(freq) for freq in (256, 1024)
        }
        return analytic, measured

    analytic, measured = run_once(experiment)
    print_header("Fig 11 — snapshot replication bandwidth (Mbps)")
    rows = []
    for i, freq in enumerate(FREQUENCIES):
        row = {"freq_hz": freq}
        for n in SKETCHES:
            row[f"{n} sketches"] = analytic[n][i]
        rows.append(row)
    print_rows(rows, ["freq_hz"] + [f"{n} sketches" for n in SKETCHES])
    emit(f"measured (packet-level, 3 sketches): "
          f"{ {f: round(m, 1) for f, m in measured.items()} }")
    emit("paper: 34.16 Mbps at 1 kHz with 3 sketches; linear in both axes")

    # The paper's headline point: ~34 Mbps at 1 kHz, 3 sketches.
    assert analytic[3][FREQUENCIES.index(1024)] == pytest.approx(34.16 * 1.024,
                                                                 rel=0.25)
    # Linearity in frequency and sketch count.
    for n in SKETCHES:
        assert analytic[n][3] == pytest.approx(2 * analytic[n][2], rel=0.01)
    assert analytic[5][0] == pytest.approx(analytic[3][0] * 5 / 3, rel=0.01)
    # Packet-level measurement agrees with the analytic accounting. The
    # simulated protocol bytes include IP/UDP encapsulation, so allow a
    # constant factor; the *scaling* with frequency must match.
    ratio = measured[1024] / measured[256]
    assert ratio == pytest.approx(4.0, rel=0.15)
    model = snapshot_bandwidth_mbps(3, 64, 1024)
    assert measured[1024] == pytest.approx(model, rel=2.0)

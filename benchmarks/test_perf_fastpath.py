"""Fast-path performance gate (wall clock, not a paper figure).

Runs the NAT steady-state scenario (see :mod:`repro.fastpath.bench`)
three ways — reference path, fast path on the heap scheduler, fast path
on the timer-wheel scheduler — asserts all three produce bit-identical
results (events, trace ring, metrics), and records throughput in
``BENCH_fastpath.json`` at the repository root.

The headline gate: fast-path packets/s must be **>= 10x** the committed
``redplane_pipeline`` baseline in ``BENCH_eventloop.json`` (the
pre-fast-path event loop). The same-scenario on/off ratio is also
recorded but is *not* the gate — under the bit-identity contract it is
bounded by the irreducible link/event layer (docs/PERFORMANCE.md).

Wall-clock numbers are machine-dependent: each configuration takes the
best of two runs (standard wall-clock practice — the minimum is the run
least disturbed by the machine), and identity is asserted on *every*
run, not just the timed best.
"""

from __future__ import annotations

import json
import os

from repro.fastpath.bench import (
    committed_baseline_pps,
    identity_report,
    run_scenario,
)

RESULTS_PATH = os.path.normpath(
    os.path.join(os.path.dirname(__file__), "..", "BENCH_fastpath.json")
)

#: Wall-clock trials per configuration; best (max pps) is recorded.
TRIALS = 2
#: The tentpole gate: fast-path pps over the committed baseline pps.
TARGET_SPEEDUP = 10.0


def _best_of(trials: int, **kwargs) -> dict:
    runs = [run_scenario(**kwargs) for _ in range(trials)]
    best = max(runs, key=lambda r: r["packets_per_s"])
    # Every trial of one configuration must agree with itself on the
    # deterministic axes; catching a flapping digest here means the
    # scenario itself went nondeterministic.
    for run in runs[1:]:
        assert identity_report(runs[0], run)["trace"], \
            "scenario is nondeterministic across identical runs"
    return best


def test_perf_fastpath(run_once):
    def experiment():
        off = _best_of(TRIALS, fastpath=False)
        on_heap = _best_of(TRIALS, fastpath=True)
        on_wheel = _best_of(TRIALS, fastpath=True, scheduler="wheel")
        return off, on_heap, on_wheel

    off, on_heap, on_wheel = run_once(experiment)

    # Identity first: throughput of a run that diverged is meaningless.
    for name, candidate in (("heap", on_heap), ("wheel", on_wheel)):
        report = identity_report(off, candidate)
        assert all(report.values()), \
            f"fastpath({name}) diverged from reference: {report}"

    baseline = committed_baseline_pps()
    results = {
        "baseline_committed_pps": baseline,
        "scenario": {k: off[k] for k in
                     ("flows", "packets_per_flow", "seed", "packets")},
        "reference": _public(off),
        "fastpath_heap": _public(on_heap),
        "fastpath_wheel": _public(on_wheel),
        "speedup_vs_committed": on_heap["packets_per_s"] / baseline,
        "speedup_same_scenario":
            on_heap["packets_per_s"] / off["packets_per_s"],
        "identity": identity_report(off, on_heap),
        "flow_cache": on_heap["fastpath_stats"]["flow_cache"],
        "invalidations": on_heap["fastpath_stats"]["invalidations"],
    }
    with open(RESULTS_PATH, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")

    cache = results["flow_cache"]
    print(f"\nfast-path benchmark (wall clock; see {RESULTS_PATH}):")
    print(f"  reference   {off['packets_per_s']:>10.1f} pkt/s")
    print(f"  fast (heap) {on_heap['packets_per_s']:>10.1f} pkt/s   "
          f"{results['speedup_vs_committed']:.2f}x vs committed "
          f"{baseline:.1f}, {results['speedup_same_scenario']:.2f}x "
          f"same-scenario")
    print(f"  fast (wheel){on_wheel['packets_per_s']:>10.1f} pkt/s")
    print(f"  flow cache  {cache['hits']} hits / {cache['misses']} misses")

    # Sanity: the cache actually carried the steady state.
    assert cache["hits"] > 10 * cache["misses"]
    # The tentpole gate.
    assert results["speedup_vs_committed"] >= TARGET_SPEEDUP, (
        f"fast path reached {results['speedup_vs_committed']:.2f}x of the "
        f"committed baseline ({baseline:.1f} pkt/s); the gate is "
        f"{TARGET_SPEEDUP}x"
    )


def _public(run: dict) -> dict:
    """The fields worth committing (digests/metrics stay out of the JSON)."""
    return {k: run[k] for k in
            ("scheduler", "fastpath", "packets", "events", "wall_s",
             "packets_per_s")}

"""Table 1: the impact of a switch failure on each application class —
demonstrated, not just tabulated.

For every application we run the same scenario twice: (a) the app with
switch-local state only, where the failure produces exactly the impact
column of Table 1 (broken connections, lost key-value pairs, inaccurate
detection); and (b) the RedPlane-enabled app, where the replacement switch
restores the state and the impact disappears.
"""

from __future__ import annotations

from repro import RedPlaneConfig, Simulator, deploy
from repro.apps import (
    EpcSgwApp,
    FirewallApp,
    HeavyHitterApp,
    KvStoreApp,
    NatApp,
    NAT_PUBLIC_IP,
    OP_READ,
    OP_UPDATE,
    install_kv_routes,
    install_nat_routes,
    make_data_packet,
    make_request,
    make_signaling_packet,
    parse_reply,
)
from repro.apps import (
    SequencerApp,
    SynDefenseApp,
    install_sequencer_routes,
    make_sequenced_request,
    parse_stamp,
)
from repro.baselines import PlainAppBlock
from repro.core.api import attach_snapshot_replication
from repro.core.engine import RedPlaneMode
from repro.net.packet import Packet, TCP_ACK, TCP_SYN
from repro.net.topology import build_testbed
from repro.switch.asic import SwitchASIC

from _bench_utils import print_header, print_rows

DETECT = 350_000.0


def _fail_active(sim, bed, activity):
    owner = max(bed.aggs, key=activity)
    bed.topology.fail_node(owner)
    sim.run(until=sim.now + 400_000)


def _plain_bed(sim, app_factory, routes=None):
    bed = build_testbed(sim, agg_factory=lambda s, n, ip: SwitchASIC(s, n, ip))
    if routes:
        routes(bed)
    blocks = {}
    for agg in bed.aggs:
        block = PlainAppBlock(agg, app_factory())
        agg.add_block(block)
        blocks[agg.name] = block
    return bed, blocks


def scenario_nat(redplane: bool) -> bool:
    """Returns True if the established connection survives the failure."""
    sim = Simulator(seed=41)
    if redplane:
        dep = deploy(sim, NatApp)
        install_nat_routes(dep.bed)
        bed = dep.bed
        activity = lambda a: dep.engines[a.name].stats["app_packets"]
    else:
        bed, blocks = _plain_bed(sim, NatApp, install_nat_routes)
        activity = lambda a: blocks[a.name].packets
    s11, e1 = bed.servers[0], bed.externals[0]
    seen = []
    s11.default_handler = seen.append
    s11.send(Packet.tcp(s11.ip, e1.ip, 7000, 80, flags=TCP_SYN))
    sim.run_until_idle()
    _fail_active(sim, bed, activity)
    e1.send(Packet.tcp(e1.ip, NAT_PUBLIC_IP, 80, 7000, flags=TCP_ACK))
    sim.run_until_idle()
    return len(seen) == 1


def scenario_firewall(redplane: bool) -> bool:
    sim = Simulator(seed=42)
    if redplane:
        dep = deploy(sim, FirewallApp)
        bed = dep.bed
        activity = lambda a: dep.engines[a.name].stats["app_packets"]
    else:
        bed, blocks = _plain_bed(sim, FirewallApp)
        activity = lambda a: blocks[a.name].packets
    s11, e1 = bed.servers[0], bed.externals[0]
    seen = []
    s11.default_handler = seen.append
    s11.send(Packet.tcp(s11.ip, e1.ip, 7000, 80, flags=TCP_SYN))
    sim.run_until_idle()
    _fail_active(sim, bed, activity)
    e1.send(Packet.tcp(e1.ip, s11.ip, 80, 7000, flags=TCP_ACK))
    sim.run_until_idle()
    return len(seen) == 1


def scenario_epc(redplane: bool) -> bool:
    sim = Simulator(seed=43)
    if redplane:
        dep = deploy(sim, EpcSgwApp)
        bed = dep.bed
        activity = lambda a: dep.engines[a.name].stats["app_packets"]
    else:
        bed, blocks = _plain_bed(sim, EpcSgwApp)
        activity = lambda a: blocks[a.name].packets
    e1, s11 = bed.externals[0], bed.servers[0]
    seen = []
    s11.default_handler = seen.append
    e1.send(make_signaling_packet(e1.ip, s11.ip, user_id=5, new_teid=777))
    sim.run_until_idle()
    _fail_active(sim, bed, activity)
    e1.send(make_data_packet(e1.ip, s11.ip, user_id=5, teid=777))
    sim.run_until_idle()
    from repro.apps import is_signaling

    data = [p for p in seen if not is_signaling(p)]
    return len(data) == 1


def scenario_kv(redplane: bool) -> bool:
    sim = Simulator(seed=44)
    if redplane:
        dep = deploy(sim, KvStoreApp)
        install_kv_routes(dep.bed)
        bed = dep.bed
        activity = lambda a: dep.engines[a.name].stats["app_packets"]
    else:
        bed, blocks = _plain_bed(sim, KvStoreApp, install_kv_routes)
        activity = lambda a: blocks[a.name].packets
    e1 = bed.externals[0]
    replies = []
    e1.default_handler = lambda pkt: replies.append(parse_reply(pkt))
    e1.send(make_request(e1.ip, OP_UPDATE, key=7, value=1234))
    sim.run_until_idle()
    _fail_active(sim, bed, activity)
    e1.send(make_request(e1.ip, OP_READ, key=7))
    sim.run_until_idle()
    return bool(replies) and replies[-1] == (OP_READ, 7, 1234)


def scenario_hh(redplane: bool) -> bool:
    """Accurate detection: is the heavy flow's estimate preserved?"""
    sim = Simulator(seed=45)
    packets = 40
    if redplane:
        dep = deploy(sim, lambda: HeavyHitterApp(vlans=[10], threshold=10 ** 6),
                     config=RedPlaneConfig(mode=RedPlaneMode.BOUNDED_INCONSISTENCY))
        bed = dep.bed
        reps = {}
        for agg in bed.aggs:
            reps[agg.name] = attach_snapshot_replication(
                dep.engines[agg.name], dep.apps[agg.name].snapshot_structures(),
                period_us=1_000.0,
            )
        apps = dep.apps
    else:
        bed, blocks = _plain_bed(sim, lambda: HeavyHitterApp(
            vlans=[10], threshold=10 ** 6))
        apps = {name: block.app for name, block in blocks.items()}
    e1, s11 = bed.externals[0], bed.servers[0]
    for i in range(packets):
        sim.schedule(i * 10.0, e1.send,
                     Packet.udp(e1.ip, s11.ip, 5555, 7777, vlan=10))
    sim.run(until=5_000)
    if redplane:
        for rep in reps.values():
            rep.stop()
    sim.run_until_idle()
    active = max(bed.aggs, key=lambda a: apps[a.name].packets_sketched)
    standby = next(a for a in bed.aggs if a is not active)
    key = Packet.udp(e1.ip, s11.ip, 5555, 7777).flow_key()
    if not redplane:
        # Fail-stop loses the sketch: the replacement switch estimates 0.
        return apps[standby.name].estimate(10, key) >= packets * 0.9
    # RedPlane: restore the replacement switch's sketch from the store's
    # snapshots (bounded inconsistency: within one period of the truth).
    from repro.apps.heavy_hitter import vlan_store_key

    store = [st for st in bed.store_servers][0]
    restored_app = apps[standby.name]
    for row in range(3):
        rec = store.records.get(vlan_store_key(10, row))
        if rec is None:
            return False
        values = [rec.snapshot_vals.get(i, 0) for i in range(64)]
        restored_app.sketches[10][row].cp_install(values)
    return restored_app.estimate(10, key) >= packets * 0.9


def scenario_syn_defense(redplane: bool) -> bool:
    """SYN-flood defense: does a verified client stay verified?"""
    sim = Simulator(seed=46)
    if redplane:
        dep = deploy(sim, SynDefenseApp)
        bed = dep.bed
        activity = lambda a: dep.engines[a.name].stats["app_packets"]
    else:
        bed, blocks = _plain_bed(sim, SynDefenseApp)
        activity = lambda a: blocks[a.name].packets
    e1, s11 = bed.externals[0], bed.servers[0]
    challenges, inside = [], []
    e1.default_handler = challenges.append
    s11.default_handler = inside.append
    e1.send(Packet.tcp(e1.ip, s11.ip, 7000, 80, flags=TCP_SYN, seq=5))
    sim.run_until_idle()
    cookie = challenges[0].l4.seq
    e1.send(Packet.tcp(e1.ip, s11.ip, 7000, 80, flags=TCP_ACK,
                       ack=(cookie + 1) & 0xFFFFFFFF))
    sim.run_until_idle()
    _fail_active(sim, bed, activity)
    e1.send(Packet.tcp(e1.ip, s11.ip, 7000, 80, flags=TCP_SYN))
    sim.run_until_idle()
    return len(inside) == 1  # the verified client's SYN passes


def scenario_sequencer(redplane: bool) -> bool:
    """In-network sequencer: do stamps stay monotone across the failure?"""
    sim = Simulator(seed=47)
    if redplane:
        dep = deploy(sim, SequencerApp)
        install_sequencer_routes(dep.bed)
        bed = dep.bed
        activity = lambda a: dep.engines[a.name].stats["app_packets"]
    else:
        bed, blocks = _plain_bed(sim, SequencerApp, install_sequencer_routes)
        activity = lambda a: blocks[a.name].packets
    e1, s11 = bed.externals[0], bed.servers[0]
    stamps = []
    s11.default_handler = lambda pkt: stamps.append(parse_stamp(pkt)[1])
    for i in range(4):
        sim.schedule(i * 200.0, e1.send,
                     make_sequenced_request(e1.ip, group=1, dst_ip=s11.ip))
    sim.run_until_idle()
    _fail_active(sim, bed, activity)
    for i in range(4):
        sim.schedule(i * 200.0, e1.send,
                     make_sequenced_request(e1.ip, group=1, dst_ip=s11.ip))
    sim.run_until_idle()
    return stamps == sorted(stamps) and len(set(stamps)) == len(stamps)


SCENARIOS = [
    ("NAT", "connection broken", scenario_nat),
    ("Stateful firewall", "connection broken", scenario_firewall),
    ("SYN flood defense", "dropping valid packets", scenario_syn_defense),
    ("EPC-SGW", "active session broken", scenario_epc),
    ("In-network sequencer", "incorrect sequencing", scenario_sequencer),
    ("In-network KV store", "losing key-value pairs", scenario_kv),
    ("HH detection", "inaccurate detection", scenario_hh),
]


def test_table1(run_once):
    def experiment():
        return SCENARIOS, {
            name: (fn(False), fn(True)) for name, _impact, fn in SCENARIOS
        }

    table, outcomes = run_once(experiment)
    print_header("Table 1 — impact of switch failures, demonstrated")
    rows = []
    for name, impact, _fn in table:
        without, with_rp = outcomes[name]
        rows.append({
            "application": name,
            "paper impact": impact,
            "w/o RedPlane": "OK (bug!)" if without else "impact reproduced",
            "w/ RedPlane": "survives" if with_rp else "FAILS (bug!)",
        })
    print_rows(rows, ["application", "paper impact", "w/o RedPlane",
                      "w/ RedPlane"])

    for name, (without, with_rp) in outcomes.items():
        assert not without, f"{name}: failure should break the plain app"
        assert with_rp, f"{name}: RedPlane should mask the failure"

"""Ablation: retransmission timeout vs. loss recovery and buffer cost.

The switch-side retransmitter (§5.2) resends a mirrored truncated request
when no acknowledgment arrives within the timeout. A short timeout recovers
lost updates quickly but fires spuriously (duplicate requests the store
must dedupe/sequence away); a long timeout stalls gated reads and the
piggybacked outputs of retried flows.
"""

from __future__ import annotations

from repro import RedPlaneConfig, Simulator, deploy
from repro.analysis import percentile
from repro.apps.counter import SyncCounterApp
from repro.net.packet import Packet

from _bench_utils import emit, print_header, print_rows

TIMEOUTS_US = [16.0, 48.0, 200.0, 1000.0]
LOSS = 0.05
PACKETS = 400


def measure(timeout_us: float):
    sim = Simulator(seed=19)
    dep = deploy(sim, SyncCounterApp, link_loss=LOSS,
                 config=RedPlaneConfig(retransmit_timeout_us=timeout_us))
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    delivered = []
    s11.default_handler = lambda pkt: delivered.append(sim.now)
    for i in range(PACKETS):
        pkt = Packet.udp(e1.ip, s11.ip, 6000 + (i % 16), 7777)
        sim.schedule(i * 100.0, e1.send, pkt)
    sim.run(until=PACKETS * 100.0 + 5_000_000.0)

    retrans = sum(e.stats["retransmissions"] for e in dep.engines.values())
    peak_kb = max(a.peak_buffer_occupancy for a in dep.bed.aggs) / 1024.0
    # Did replication converge despite loss? Compare store vs switch state.
    converged = 0
    checked = 0
    eng = max(dep.engines.values(), key=lambda e: e.stats["app_packets"])
    for key, idx in list(eng._flow_idx.items()):
        rec = dep.stores[0].records.get(key)
        if rec is None:
            continue
        checked += 1
        if rec.vals == eng.flow_state(key):
            converged += 1
    return retrans, peak_kb, converged, checked


def test_ablation_retransmit_timeout(run_once):
    def experiment():
        return {t: measure(t) for t in TIMEOUTS_US}

    results = run_once(experiment)
    print_header("Ablation — retransmission timeout under 5% request loss")
    rows = []
    for timeout, (retrans, peak_kb, converged, checked) in results.items():
        rows.append({
            "timeout (us)": timeout,
            "retransmissions": retrans,
            "peak buffer (KB)": peak_kb,
            "converged flows": f"{converged}/{checked}",
        })
    print_rows(rows, ["timeout (us)", "retransmissions", "peak buffer (KB)",
                      "converged flows"])
    emit("expected: all timeouts converge; short timeouts retransmit more")

    for timeout, (retrans, _peak, converged, checked) in results.items():
        assert checked > 0
        assert converged == checked, (timeout, converged, checked)
    # Shorter timeouts produce more (sometimes spurious) retransmissions.
    assert results[TIMEOUTS_US[0]][0] >= results[TIMEOUTS_US[-1]][0]

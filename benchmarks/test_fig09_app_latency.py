"""Fig 9: end-to-end RTT for RedPlane-enabled applications.

Paper result: NAT, firewall, load balancer, EPC-SGW, and HH detection all
share the same 8 us median — identical to their non-fault-tolerant
versions — because their data paths only read state (or replicate
asynchronously). Sync-Counter, which synchronously replicates on every
packet, adds ~20 us, of which ~12 us is the 3-way chain replication
(compare "w/o chain").
"""

from __future__ import annotations

from repro import RedPlaneConfig, Simulator, deploy
from repro.analysis import summarize
from repro.apps import (
    EpcSgwApp,
    FirewallApp,
    HeavyHitterApp,
    LoadBalancerApp,
    NatApp,
    VIP,
    install_nat_routes,
    install_vip_routes,
    make_dip_allocator,
)
from repro.apps.counter import AsyncCounterApp, SyncCounterApp
from repro.core.api import attach_snapshot_replication
from repro.core.engine import RedPlaneMode
from repro.net.packet import Packet, TCP_SYN
from repro.workloads.harness import EchoResponder, RttProbe
from repro.workloads.traces import epc_trace, five_tuple_trace, vlan_trace

from _bench_utils import emit, print_header, print_rows

NUM_PACKETS = 3000
SEED = 21


def run_nat():
    sim = Simulator(seed=SEED)
    dep = deploy(sim, NatApp)
    install_nat_routes(dep.bed)
    s11, e1 = dep.bed.servers[0], dep.bed.externals[0]
    EchoResponder(e1)
    probe = RttProbe(s11)
    probe.replay(five_tuple_trace(NUM_PACKETS, 50, s11.ip, e1.ip,
                                  flow_stagger_us=300.0, seed=SEED))
    sim.run_until_idle()
    return probe.rtts_us


def run_firewall():
    sim = Simulator(seed=SEED)
    dep = deploy(sim, FirewallApp)
    s11, e1 = dep.bed.servers[0], dep.bed.externals[0]
    EchoResponder(e1)
    probe = RttProbe(s11)
    events = five_tuple_trace(NUM_PACKETS, 50, s11.ip, e1.ip,
                              flow_stagger_us=300.0, seed=SEED)
    seen_flows = set()
    for event in events:  # convert to TCP; SYN on each flow's first packet
        flags = 0 if event.flow in seen_flows else TCP_SYN
        seen_flows.add(event.flow)
        tcp = Packet.tcp(s11.ip, e1.ip, event.pkt.l4.sport,
                         event.pkt.l4.dport, flags=flags,
                         payload=event.pkt.payload)
        tcp.ip.identification = event.trace_id
        event.pkt = tcp
    probe.replay(events)
    sim.run_until_idle()
    return probe.rtts_us


def run_load_balancer():
    sim = Simulator(seed=SEED)
    dep = deploy(sim, LoadBalancerApp)
    dips = [s.ip for s in dep.bed.servers]
    for store in dep.stores:
        store.allocator = make_dip_allocator(dips)
    install_vip_routes(dep.bed)
    e1 = dep.bed.externals[0]
    for server in dep.bed.servers:
        EchoResponder(server)
    probe = RttProbe(e1)
    events = five_tuple_trace(NUM_PACKETS, 50, e1.ip, VIP,
                              flow_stagger_us=300.0, seed=SEED, dport=80)
    probe.replay(events)
    sim.run_until_idle()
    return probe.rtts_us


def run_epc():
    sim = Simulator(seed=SEED)
    dep = deploy(sim, EpcSgwApp)
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    EchoResponder(s11)
    probe = RttProbe(e1)
    probe.replay(epc_trace(NUM_PACKETS, 40, e1.ip, s11.ip, seed=SEED))
    sim.run_until_idle()
    return probe.rtts_us


def run_hh():
    sim = Simulator(seed=SEED)
    dep = deploy(
        sim,
        lambda: HeavyHitterApp(vlans=[10, 20, 30], threshold=10 ** 6),
        config=RedPlaneConfig(mode=RedPlaneMode.BOUNDED_INCONSISTENCY),
    )
    for agg in dep.bed.aggs:
        attach_snapshot_replication(
            dep.engines[agg.name], dep.apps[agg.name].snapshot_structures(),
            period_us=1_000.0,
        )
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    EchoResponder(s11)
    probe = RttProbe(e1)
    probe.replay(vlan_trace(NUM_PACKETS, [10, 20, 30], 40, e1.ip, s11.ip,
                            seed=SEED))
    sim.run(until=40_000)
    for agg in dep.bed.aggs:
        agg.pktgen.stop()
    sim.run_until_idle()
    return probe.rtts_us


def run_async_counter():
    sim = Simulator(seed=SEED)
    dep = deploy(sim, lambda: AsyncCounterApp(slots=64),
                 config=RedPlaneConfig(mode=RedPlaneMode.BOUNDED_INCONSISTENCY))
    for agg in dep.bed.aggs:
        attach_snapshot_replication(
            dep.engines[agg.name],
            {AsyncCounterApp.STORE_KEY: dep.apps[agg.name].counters},
            period_us=1_000.0,
        )
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    EchoResponder(s11)
    probe = RttProbe(e1)
    probe.replay(five_tuple_trace(NUM_PACKETS, 50, e1.ip, s11.ip,
                                  flow_stagger_us=300.0, seed=SEED))
    sim.run(until=40_000)
    for agg in dep.bed.aggs:
        agg.pktgen.stop()
    sim.run_until_idle()
    return probe.rtts_us


def run_sync_counter(chain_length: int):
    sim = Simulator(seed=SEED)
    dep = deploy(sim, SyncCounterApp, chain_length=chain_length)
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    EchoResponder(s11)
    probe = RttProbe(e1)
    probe.replay(five_tuple_trace(NUM_PACKETS, 50, e1.ip, s11.ip,
                                  flow_stagger_us=300.0, seed=SEED))
    sim.run_until_idle()
    return probe.rtts_us


def test_fig09(run_once):
    def experiment():
        return {
            "NAT": run_nat(),
            "Firewall": run_firewall(),
            "Load balancer": run_load_balancer(),
            "EPC-SGW": run_epc(),
            "HH-detection": run_hh(),
            "Async-Counter": run_async_counter(),
            "Sync-Counter (w/o chain)": run_sync_counter(1),
            "Sync-Counter (w/ chain)": run_sync_counter(3),
        }

    results = run_once(experiment)
    print_header("Fig 9 — end-to-end RTT, RedPlane-enabled apps (us)")
    stats = {name: summarize(r) for name, r in results.items()}
    rows = [
        {"application": name, "p50": s["p50"], "p90": s["p90"], "p99": s["p99"]}
        for name, s in stats.items()
    ]
    print_rows(rows, ["application", "p50", "p90", "p99"])
    emit("paper: all read-centric/async apps share an 8 us median; "
          "Sync-Counter adds ~20 us of which ~12 us is chain replication")

    read_centric = ["NAT", "Firewall", "Load balancer", "EPC-SGW",
                    "HH-detection", "Async-Counter"]
    medians = [stats[name]["p50"] for name in read_centric]
    assert max(medians) - min(medians) <= 2.0  # all share the same median

    base = stats["NAT"]["p50"]
    no_chain = stats["Sync-Counter (w/o chain)"]["p50"]
    with_chain = stats["Sync-Counter (w/ chain)"]["p50"]
    assert 3.0 <= no_chain - base <= 16.0        # sync replication cost
    assert 4.0 <= with_chain - no_chain <= 20.0  # chain replication cost
    assert 8.0 <= with_chain - base <= 32.0      # total ~20 us in the paper

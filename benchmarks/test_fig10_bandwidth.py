"""Fig 10: RedPlane replication bandwidth overhead per application.

Paper result (share of total traffic that is RedPlane protocol bytes,
original packets riding as piggyback counted as application traffic):
read-centric apps (NAT, firewall, load balancer) ~0.1-0.9 %; EPC-SGW
12.8 %; HH-detector (1 ms snapshots) negligible; Sync-Counter 51.2 %
(25.6 % requests + 25.6 % responses).
"""

from __future__ import annotations

from repro import RedPlaneConfig, Simulator, deploy
from repro.analysis import fig10_row
from repro.apps import (
    EpcSgwApp,
    FirewallApp,
    HeavyHitterApp,
    LoadBalancerApp,
    NatApp,
    VIP,
    install_nat_routes,
    install_vip_routes,
    make_dip_allocator,
)
from repro.apps.counter import SyncCounterApp
from repro.core.api import attach_snapshot_replication
from repro.core.engine import RedPlaneMode
from repro.net.packet import Packet, TCP_SYN
from repro.workloads.traces import epc_trace, five_tuple_trace, vlan_trace

from _bench_utils import emit, print_header, print_rows

NUM_PACKETS = 3000
#: Few long flows for the read-centric apps: the paper replays 100k-packet
#: traces where each flow amortizes its one-time lease/install messages
#: over thousands of packets; 8 flows x ~375 packets approximates that
#: per-flow amortization at simulable scale.
NUM_FLOWS_READ_CENTRIC = 8
SEED = 33

#: The experiment's offered load in the paper (three senders, 64 B): used
#: to scale the rate-independent snapshot bandwidth of the HH detector.
PAPER_LINE_RATE_GBPS = 207.6e6 * 64 * 8 / 1e9


def _small_packets(events):
    """Rewrite a trace to 64-byte packets, as the Fig 10 experiment uses."""
    for event in events:
        event.pkt.payload = b""
    return events


def _finish(sim, dep):
    sim.run_until_idle()
    return fig10_row(dep.bed.aggs)


def run_nat():
    sim = Simulator(seed=SEED)
    dep = deploy(sim, NatApp)
    install_nat_routes(dep.bed)
    s11, e1 = dep.bed.servers[0], dep.bed.externals[0]
    for event in _small_packets(
        five_tuple_trace(NUM_PACKETS, NUM_FLOWS_READ_CENTRIC, s11.ip, e1.ip,
                         seed=SEED, flow_stagger_us=100.0)
    ):
        sim.schedule_at(event.time_us, s11.send, event.pkt)
    return _finish(sim, dep)


def run_firewall():
    sim = Simulator(seed=SEED)
    dep = deploy(sim, FirewallApp)
    s11, e1 = dep.bed.servers[0], dep.bed.externals[0]
    events = five_tuple_trace(NUM_PACKETS, NUM_FLOWS_READ_CENTRIC, s11.ip,
                              e1.ip, seed=SEED, flow_stagger_us=100.0)
    seen = set()
    for event in events:
        flags = 0 if event.flow in seen else TCP_SYN
        seen.add(event.flow)
        pkt = Packet.tcp(s11.ip, e1.ip, event.pkt.l4.sport,
                         event.pkt.l4.dport, flags=flags)
        sim.schedule_at(event.time_us, s11.send, pkt)
    return _finish(sim, dep)


def run_lb():
    sim = Simulator(seed=SEED)
    dep = deploy(sim, LoadBalancerApp)
    for store in dep.stores:
        store.allocator = make_dip_allocator([s.ip for s in dep.bed.servers])
    install_vip_routes(dep.bed)
    e1 = dep.bed.externals[0]
    for event in _small_packets(
        five_tuple_trace(NUM_PACKETS, NUM_FLOWS_READ_CENTRIC, e1.ip, VIP,
                         seed=SEED, dport=80, flow_stagger_us=100.0)
    ):
        sim.schedule_at(event.time_us, e1.send, event.pkt)
    return _finish(sim, dep)


def run_epc():
    sim = Simulator(seed=SEED)
    dep = deploy(sim, EpcSgwApp)
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    for event in epc_trace(NUM_PACKETS, 40, e1.ip, s11.ip, seed=SEED):
        event.pkt.payload = event.pkt.payload[:9]  # headers only
        sim.schedule_at(event.time_us, e1.send, event.pkt)
    return _finish(sim, dep)


def run_hh():
    """Snapshot replication bandwidth is rate-independent (a fixed number
    of slot messages per period), so its *share* depends on the offered
    traffic volume. We measure the snapshot byte rate packet-level and
    express it against the experiment's 207.6 Mpps x 64 B offered load —
    what the paper's instrumented switch would see."""
    sim = Simulator(seed=SEED)
    dep = deploy(
        sim,
        lambda: HeavyHitterApp(vlans=[10, 20, 30], threshold=10 ** 6),
        config=RedPlaneConfig(mode=RedPlaneMode.BOUNDED_INCONSISTENCY),
    )
    for agg in dep.bed.aggs:
        attach_snapshot_replication(
            dep.engines[agg.name], dep.apps[agg.name].snapshot_structures(),
            period_us=1_000.0,
        )
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    for event in _small_packets(
        vlan_trace(NUM_PACKETS, [10, 20, 30], 40, e1.ip, s11.ip, seed=SEED)
    ):
        sim.schedule_at(event.time_us, e1.send, event.pkt)
    duration_us = 20_000.0
    sim.run(until=duration_us)
    for agg in dep.bed.aggs:
        agg.pktgen.stop()
    sim.run_until_idle()
    agg = max(dep.bed.aggs, key=lambda a: a.bytes_protocol_out)
    snapshot_gbps = agg.bytes_protocol_out * 8 / (duration_us * 1000.0)
    resp_gbps = agg.bytes_protocol_in * 8 / (duration_us * 1000.0)
    total = PAPER_LINE_RATE_GBPS + snapshot_gbps + resp_gbps
    return {
        "original": PAPER_LINE_RATE_GBPS / total,
        "requests": snapshot_gbps / total,
        "responses": resp_gbps / total,
    }


def run_sync_counter():
    sim = Simulator(seed=SEED)
    dep = deploy(sim, SyncCounterApp)
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    for event in _small_packets(
        five_tuple_trace(NUM_PACKETS, 50, e1.ip, s11.ip, seed=SEED)
    ):
        sim.schedule_at(event.time_us, e1.send, event.pkt)
    return _finish(sim, dep)


def test_fig10(run_once):
    def experiment():
        return {
            "NAT": run_nat(),
            "Firewall": run_firewall(),
            "Load balancer": run_lb(),
            "EPC-SGW": run_epc(),
            "HH-detector": run_hh(),
            "Sync-Counter": run_sync_counter(),
        }

    results = run_once(experiment)
    print_header("Fig 10 — replication bandwidth share of total traffic (%)")
    rows = []
    shares = {}
    for name, parts in results.items():
        share = 100.0 * (parts["requests"] + parts["responses"])
        shares[name] = share
        rows.append({
            "application": name,
            "original%": 100.0 * parts["original"],
            "requests%": 100.0 * parts["requests"],
            "responses%": 100.0 * parts["responses"],
            "protocol%": share,
        })
    print_rows(rows, ["application", "original%", "requests%", "responses%",
                      "protocol%"])
    emit("paper: NAT/FW/LB ~0.1-0.9%, EPC-SGW 12.8%, HH ~0.2%, "
          "Sync-Counter 51.2%")

    for name in ("NAT", "Firewall", "Load balancer"):
        assert shares[name] < 5.0, name          # read-centric: negligible
    assert shares["HH-detector"] < 5.0           # async snapshots: negligible
    assert 6.0 < shares["EPC-SGW"] < 25.0        # mixed: noticeable
    assert 35.0 < shares["Sync-Counter"] < 65.0  # per-packet sync: huge
    assert shares["Sync-Counter"] > shares["EPC-SGW"] > shares["NAT"]

    # §7.2's at-scale check: "a topology with more RedPlane switches ...
    # is consistent with Fig 10 in terms of the percentage overhead".
    from repro.analysis import paper_profiles, scale_sweep

    emit()
    emit("at scale (analytical model, % protocol share per cluster size):")
    for name, profile in paper_profiles().items():
        sweep = scale_sweep(profile, [2, 8, 64])
        values = [round(100 * v, 2) for v in sweep.values()]
        emit(f"  {name:<14s} 2/8/64 switches: {values}")
        assert max(values) - min(values) < 1e-6  # scale-invariant share

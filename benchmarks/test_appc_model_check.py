"""Appendix C / §5.5: model checking the RedPlane protocol.

The paper writes a TLA+ specification of the linearizable mode and checks
it with TLC. This benchmark runs our Python port of that spec through the
explicit-state checker at the paper-scale constants, verifying:

* ``SingleOwnerInvariant`` — at most one switch ever holds a flow's lease;
* the write-sequence assertion — a write is only acknowledged with the
  exact sequence number the switch produced (no lost/stale update is ever
  silently acknowledged);
* absence of deadlock, and reachability of the all-packets-processed
  state (the liveness property).
"""

from __future__ import annotations

from repro.model import ModelConfig, liveness_probe, model_check

from _bench_utils import emit, print_header, print_rows


def test_appendix_c_model_check(run_once):
    def experiment():
        configs = [
            ("2 switches, lease=2, pkts=2, failures",
             ModelConfig(switches=("s1", "s2"), lease_period=2, total_pkts=2,
                         allow_failures=True)),
            ("2 switches, lease=1, pkts=3, failures",
             ModelConfig(switches=("s1", "s2"), lease_period=1, total_pkts=3,
                         allow_failures=True)),
            ("2 switches, lease=3, pkts=3, no failures",
             ModelConfig(switches=("s1", "s2"), lease_period=3, total_pkts=3,
                         allow_failures=False)),
        ]
        results = [(name, model_check(cfg)) for name, cfg in configs]
        live = liveness_probe(ModelConfig(total_pkts=2, allow_failures=False))
        return results, live

    results, live = run_once(experiment)
    print_header("Appendix C — protocol model checking (TLA+ spec port)")
    rows = []
    for name, result in results:
        rows.append({
            "model": name,
            "states": result.states_explored,
            "transitions": result.transitions,
            "depth": result.max_depth,
            "result": "OK" if result.ok else str(result.violation),
        })
    print_rows(rows, ["model", "states", "transitions", "depth", "result"])
    emit(f"liveness (every packet eventually processed): {live}")
    emit("paper: TLC confirms per-flow linearizability of the mode")

    for name, result in results:
        assert result.ok, (name, result.summary())
        assert result.deadlocks == [], name
    assert live

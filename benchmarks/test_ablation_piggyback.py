"""Ablation: piggybacking vs. hypothetical on-switch output buffering.

§5.1's central trick: instead of holding output packets in switch memory
until the state update is durable, RedPlane ships them *inside* the
replication request and lets the store's reply carry them back — the
network + store DRAM as delay-line memory. This ablation quantifies what
on-switch buffering would have cost: bytes of full output packets held for
one replication round trip, versus the truncated header-only copies the
mirror session actually holds.
"""

from __future__ import annotations

from repro import Simulator, deploy
from repro.apps.counter import SyncCounterApp
from repro.net import constants
from repro.net.packet import Packet

from _bench_utils import emit, print_header, print_rows

RATES_GBPS = [20, 60, 100]
PACKET_BYTES = 1500
DURATION_US = 400.0


def measure(rate_gbps: float):
    """(actual truncated-copy peak KB, hypothetical full-packet peak KB)."""
    sim = Simulator(seed=23)
    dep = deploy(sim, SyncCounterApp)
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    gap_us = PACKET_BYTES * 8 / (rate_gbps * 1000.0)
    n = int(DURATION_US / gap_us)

    # Track what a buffer-the-output design would hold: every in-flight
    # write's full output packet until its ack returns.
    inflight_bytes = {"now": 0, "peak": 0}
    engines = list(dep.engines.values())
    for eng in engines:
        orig_send = eng._send_request
        orig_ack = eng._handle_write_ack

        def send_wrapper(ctx, msg, _orig=orig_send, **kwargs):
            if msg.piggyback is not None and msg.msg_type.name == "REPL_WRITE_REQ":
                inflight_bytes["now"] += len(msg.piggyback)
                inflight_bytes["peak"] = max(inflight_bytes["peak"],
                                             inflight_bytes["now"])
            return _orig(ctx, msg, **kwargs)

        def ack_wrapper(ctx, msg, idx, now, _orig=orig_ack):
            if msg.piggyback is not None:
                inflight_bytes["now"] = max(
                    0, inflight_bytes["now"] - len(msg.piggyback))
            _orig(ctx, msg, idx, now)

        eng._send_request = send_wrapper
        eng._handle_write_ack = ack_wrapper

    for i in range(n):
        pkt = Packet.udp(e1.ip, s11.ip, 6000 + (i % 64), 7777,
                         payload=b"\x00" * (PACKET_BYTES - 42))
        sim.schedule(i * gap_us, e1.send, pkt)
    sim.run(until=DURATION_US + 3_000.0)
    actual_kb = max(a.peak_buffer_occupancy for a in dep.bed.aggs) / 1024.0
    hypothetical_kb = inflight_bytes["peak"] / 1024.0
    return actual_kb, hypothetical_kb


def test_ablation_piggyback(run_once):
    def experiment():
        return {rate: measure(rate) for rate in RATES_GBPS}

    results = run_once(experiment)
    print_header("Ablation — piggybacking vs on-switch output buffering")
    rows = []
    for rate, (actual, hypothetical) in results.items():
        rows.append({
            "rate (Gbps)": rate,
            "mirror buffer, truncated (KB)": actual,
            "full-output buffering (KB)": hypothetical,
            "saving": f"{hypothetical / max(actual, 1e-9):.1f}x",
        })
    print_rows(rows, ["rate (Gbps)", "mirror buffer, truncated (KB)",
                      "full-output buffering (KB)", "saving"])
    emit("expected: truncation keeps switch memory use an order of "
          "magnitude below buffering outputs on-switch")

    for rate, (actual, hypothetical) in results.items():
        assert hypothetical > 3.0 * actual, (rate, actual, hypothetical)
    # Both grow with rate; the gap is what piggybacking buys.
    assert results[100][1] > results[20][1]

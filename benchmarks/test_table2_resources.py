"""Table 2: switch ASIC resources used by RedPlane (100 k flows).

Paper result (additional usage relative to the app baseline): Match
Crossbar 5.3%, Meter ALU 8.3%, Gateway 9.9%, SRAM 13.2%, TCAM 11.8%, VLIW
Instruction 5.5%, Hash Bits 3.7% — "ample resources remain"; only SRAM
scales with the number of concurrent flows.
"""

from __future__ import annotations

import pytest

from repro import RedPlaneConfig, Simulator, deploy
from repro.apps.counter import SyncCounterApp
from repro.switch.resources import ResourceModel

from _bench_utils import emit, print_header, print_rows

PAPER = {
    "Match Crossbar": 5.3,
    "Meter ALU": 8.3,
    "Gateway": 9.9,
    "SRAM": 13.2,
    "TCAM": 11.8,
    "VLIW Instruction": 5.5,
    "Hash Bits": 3.7,
}


def test_table2(run_once):
    def experiment():
        sim = Simulator()
        dep = deploy(sim, SyncCounterApp,
                     config=RedPlaneConfig(max_flows=100_000))
        engine = dep.engines["agg1"]
        model = ResourceModel()
        model.register(engine.resource_usage())
        scaling = {}
        for flows in (10_000, 100_000, 1_000_000):
            m = ResourceModel()
            sim_n = Simulator()
            dep_n = deploy(sim_n, SyncCounterApp,
                           config=RedPlaneConfig(max_flows=flows))
            m.register(dep_n.engines["agg1"].resource_usage())
            scaling[flows] = m.percentage("sram_bits")
        return model.table2(), scaling

    table, scaling = run_once(experiment)
    print_header("Table 2 — additional ASIC resources used by RedPlane "
                 "(100k flows, %)")
    rows = [
        {"resource": label, "measured %": table[label], "paper %": paper}
        for label, paper in PAPER.items()
    ]
    print_rows(rows, ["resource", "measured %", "paper %"])
    emit(f"SRAM scaling with flow count: "
          f"{ {k: round(v, 2) for k, v in scaling.items()} } "
          f"(only SRAM grows; all else fixed)")

    for label, paper in PAPER.items():
        assert table[label] == pytest.approx(paper, abs=0.5), label
    assert scaling[1_000_000] > scaling[100_000] > scaling[10_000]

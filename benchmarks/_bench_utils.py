"""Printing helpers shared by the figure/table benchmarks.

Everything printed is also appended to ``bench_results.txt`` in the
repository root (truncated once per run), so the reproduced tables survive
even when pytest's output capture is on (run with ``-s`` to also see them
live). The file is the machine-readable companion to EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import sys
from typing import Dict, Optional, Sequence, TextIO

_results_file: Optional[TextIO] = None


def _results_stream() -> TextIO:
    global _results_file
    if _results_file is None:
        path = os.environ.get(
            "REPRO_BENCH_RESULTS",
            os.path.join(os.path.dirname(__file__), "..", "bench_results.txt"),
        )
        _results_file = open(os.path.normpath(path), "w")
    return _results_file


def emit(text: str = "") -> None:
    print(text)
    sys.stdout.flush()
    stream = _results_stream()
    stream.write(text + "\n")
    stream.flush()


def print_header(title: str) -> None:
    emit()
    emit("=" * 74)
    emit(title)
    emit("=" * 74)


def print_rows(rows: Sequence[Dict[str, object]], columns: Sequence[str]) -> None:
    widths = {
        col: max(len(col), *(len(_fmt(row.get(col))) for row in rows))
        for col in columns
    }
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    emit(header)
    emit("-" * len(header))
    for row in rows:
        emit("  ".join(_fmt(row.get(col)).ljust(widths[col]) for col in columns))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)

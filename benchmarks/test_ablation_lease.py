"""Ablation: lease duration vs. failover recovery time and renewal load.

DESIGN.md calls out the lease period (1 s in the prototype, renewals every
half period) as the central tunable: §7.3 notes recovery time "is affected
both by the core switch's failure detection/rerouting time and RedPlane's
lease period". Shorter leases recover faster but renew more often; longer
leases amortize renewals but leave flows frozen at the store for longer
after a failure.
"""

from __future__ import annotations

from repro import RedPlaneConfig, Simulator, deploy
from repro.core.app import AppVerdict
from repro.apps.counter import SyncCounterApp
from repro.net.packet import Packet

from _bench_utils import emit, print_header, print_rows


class ReadMostlyApp(SyncCounterApp):
    """Writes once per flow, then reads only — so lease maintenance comes
    from explicit renewals (§5.3's every-half-period mechanism), not from
    write-side renewal at the store."""

    name = "read-mostly"

    def process(self, state, pkt, ctx, switch):
        if not state.get("count"):
            state.set("count", 1)
        return AppVerdict.FORWARD

LEASES_US = [100_000.0, 300_000.0, 1_000_000.0, 2_000_000.0]
DETECT_US = 50_000.0  # fast detection isolates the lease contribution


def measure(lease_us: float):
    """Time from switch failure until the first packet flows again."""
    sim = Simulator(seed=7)
    dep = deploy(
        sim,
        ReadMostlyApp,
        config=RedPlaneConfig(lease_period_us=lease_us,
                              renew_interval_us=lease_us / 2),
    )
    e1, s11 = dep.bed.externals[0], dep.bed.servers[0]
    delivered = []
    s11.default_handler = lambda pkt: delivered.append(sim.now)

    # Steady traffic so the owner keeps renewing (every lease/2).
    def traffic(i):
        pkt = Packet.udp(e1.ip, s11.ip, 5555, 7777)
        e1.send(pkt)

    period = 10_000.0
    for i in range(1000):
        sim.schedule(i * period, traffic, i)
    fail_at = 3.05 * lease_us + 20_000.0  # mid-lease, after renewals
    sim.run(until=fail_at)
    owner = max(dep.engines.values(), key=lambda e: e.stats["app_packets"])
    dep.bed.topology.fail_node(owner.switch, detect_delay_us=DETECT_US)
    sim.run(until=fail_at + 3 * lease_us + 2_000_000.0)

    after = [t for t in delivered if t > fail_at]
    recovery_us = (after[0] - fail_at) if after else float("inf")
    renewals = sum(e.stats["lease_renewals"] for e in dep.engines.values())
    return recovery_us, renewals


def test_ablation_lease_period(run_once):
    def experiment():
        return {lease: measure(lease) for lease in LEASES_US}

    results = run_once(experiment)
    print_header("Ablation — lease period vs recovery time")
    rows = []
    for lease, (recovery, renewals) in results.items():
        rows.append({
            "lease (ms)": lease / 1000.0,
            "recovery after failure (ms)": recovery / 1000.0,
            "renewals sent": renewals,
        })
    print_rows(rows, ["lease (ms)", "recovery after failure (ms)",
                      "renewals sent"])
    emit("expected: recovery bounded by ~remaining lease; short leases "
          "recover fast but renew often")

    recoveries = [results[lease][0] for lease in LEASES_US]
    # Recovery never exceeds detection + one full lease period (+slack).
    for lease, rec in zip(LEASES_US, recoveries):
        assert rec <= DETECT_US + lease + 100_000.0, (lease, rec)
    # Longer leases recover more slowly (monotone within tolerance).
    assert recoveries[0] < recoveries[-1]
    # Shorter leases renew more often (strictly, for a read-only flow).
    assert results[LEASES_US[0]][1] > results[LEASES_US[-1]][1]
    assert results[LEASES_US[0]][1] > 0

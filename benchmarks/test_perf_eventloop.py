"""Event-loop performance baseline (wall clock, not a paper figure).

Measures how many simulated events per wall-second this machine executes,
both for a raw timer-churn microbenchmark and for the full RedPlane
pipeline. The measurement functions live in
:mod:`repro.observe.trajectory` (the perf-trajectory spine records the
same figures into ``BENCH_TRAJECTORY.json``); this benchmark runs them
and lands the numbers in ``BENCH_eventloop.json`` at the repository root
so a regression in the simulator hot path shows up as a drop between
runs.

Wall-clock results are machine-dependent; they are deliberately *not*
written into ``bench_results.txt`` (which must stay bit-identical across
runs of the same seed) and the assertions are loose floors that only
catch order-of-magnitude regressions.

This file also holds the self-profiler overhead gate: with
``repro.observe`` profiling attached, the full pipeline must run within
10% of its unprofiled wall time. The gate runs on the pipeline scenario
(events cost tens of µs each) rather than the raw timer churn (~1µs per
event), where any per-event accounting would drown the workload itself.
"""

from __future__ import annotations

import json
import os

from repro.observe.trajectory import (
    PIPELINE_PACKETS,
    RAW_EVENTS,
    run_pipeline,
    run_raw_eventloop,
)

RESULTS_PATH = os.path.normpath(
    os.path.join(os.path.dirname(__file__), "..", "BENCH_eventloop.json")
)


def test_perf_eventloop(run_once):
    def experiment():
        return {
            "raw_eventloop": run_raw_eventloop(),
            "redplane_pipeline": run_pipeline(),
        }

    results = run_once(experiment)
    with open(RESULTS_PATH, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")

    raw = results["raw_eventloop"]
    pipe = results["redplane_pipeline"]
    print(f"\nevent-loop baseline (wall clock; see {RESULTS_PATH}):")
    print(f"  raw       {raw['events']:>8d} events   "
          f"{raw['events_per_s']:>12.0f} events/s")
    print(f"  pipeline  {pipe['events']:>8d} events   "
          f"{pipe['events_per_s']:>12.0f} events/s   "
          f"{pipe['packets_per_s']:>10.0f} packets/s")

    assert raw["events"] >= RAW_EVENTS
    # >=: a buffered packet bouncing through the network re-enters the
    # engine and counts again.
    assert pipe["packets"] >= PIPELINE_PACKETS
    # Loose floors: any interpreter on any machine clears these unless the
    # hot path regressed by an order of magnitude.
    assert raw["events_per_s"] > 10_000
    assert pipe["packets_per_s"] > 50


def test_profiler_overhead(run_once):
    """Profiled pipeline within 10% of unprofiled.

    Runs plain/profiled back to back in pairs and gates on the cleanest
    pair's ratio: on a contended CI box the wall time of *both* runs
    drifts together (scheduler pressure, thermal state), so an adjacent
    pair cancels the drift that best-of-N over two separate blocks
    would misread as profiler overhead.
    """

    def experiment():
        pairs = [
            (run_pipeline()["wall_s"], run_pipeline(observe=True)["wall_s"])
            for _ in range(3)
        ]
        return {"pairs": pairs}

    results = run_once(experiment)
    pairs = results["pairs"]
    ratios = [profiled / plain for plain, profiled in pairs]
    for (plain, profiled), ratio in zip(pairs, ratios):
        print(f"\nprofiler overhead: plain {plain * 1000:.1f}ms, "
              f"profiled {profiled * 1000:.1f}ms ({(ratio - 1) * 100:+.1f}%)")
    best = min(ratios)
    assert best <= 1.10, (
        f"profiler overhead {(best - 1) * 100:.1f}% exceeds the 10% budget"
        " in every measured pair"
    )

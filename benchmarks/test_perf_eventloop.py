"""Event-loop performance baseline (wall clock, not a paper figure).

Measures how many simulated events per wall-second this machine executes,
both for a raw timer-churn microbenchmark and for the full RedPlane
pipeline, using the telemetry :class:`~repro.telemetry.ScopedTimer`. The
numbers land in ``BENCH_eventloop.json`` at the repository root so a
regression in the simulator hot path shows up as a drop between runs.

Wall-clock results are machine-dependent; they are deliberately *not*
written into ``bench_results.txt`` (which must stay bit-identical across
runs of the same seed) and the assertions are loose floors that only
catch order-of-magnitude regressions.
"""

from __future__ import annotations

import json
import os

from repro import Simulator, deploy
from repro.apps.counter import SyncCounterApp
from repro.net.packet import Packet
from repro.telemetry import ScopedTimer

RESULTS_PATH = os.path.normpath(
    os.path.join(os.path.dirname(__file__), "..", "BENCH_eventloop.json")
)

RAW_EVENTS = 200_000
PIPELINE_PACKETS = 2_000
SEED = 5


def run_raw_eventloop() -> dict:
    """Timer churn only: the scheduler/heap floor of everything else."""
    sim = Simulator(seed=SEED)

    def tick() -> None:
        if sim.events_executed < RAW_EVENTS:
            sim.schedule(1.0, tick)

    # A handful of concurrent timer chains approximates the heap depth of
    # a real run better than one serial chain.
    for i in range(8):
        sim.schedule(float(i), tick)
    with ScopedTimer("raw") as timer:
        sim.run_until_idle()
    return {
        "events": sim.events_executed,
        "wall_s": timer.elapsed_s,
        "events_per_s": timer.rate(sim.events_executed),
    }


def run_pipeline() -> dict:
    """Full stack: testbed, ASIC pipeline, replication, state store."""
    sim = Simulator(seed=SEED)
    dep = deploy(sim, SyncCounterApp)
    sender = dep.bed.externals[0]
    receiver = dep.bed.servers[0]

    def send_packet() -> None:
        sender.send(Packet.udp(sender.ip, receiver.ip, 5555, 7777))

    for i in range(PIPELINE_PACKETS):
        sim.schedule(i * 10.0, send_packet)
    with ScopedTimer("pipeline") as timer:
        sim.run_until_idle()
    packets = sum(e.stats["app_packets"] for e in dep.engines.values())
    return {
        "events": sim.events_executed,
        "packets": packets,
        "wall_s": timer.elapsed_s,
        "events_per_s": timer.rate(sim.events_executed),
        "packets_per_s": timer.rate(packets),
    }


def test_perf_eventloop(run_once):
    def experiment():
        return {
            "raw_eventloop": run_raw_eventloop(),
            "redplane_pipeline": run_pipeline(),
        }

    results = run_once(experiment)
    with open(RESULTS_PATH, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")

    raw = results["raw_eventloop"]
    pipe = results["redplane_pipeline"]
    print(f"\nevent-loop baseline (wall clock; see {RESULTS_PATH}):")
    print(f"  raw       {raw['events']:>8d} events   "
          f"{raw['events_per_s']:>12.0f} events/s")
    print(f"  pipeline  {pipe['events']:>8d} events   "
          f"{pipe['events_per_s']:>12.0f} events/s   "
          f"{pipe['packets_per_s']:>10.0f} packets/s")

    assert raw["events"] >= RAW_EVENTS
    # >=: a buffered packet bouncing through the network re-enters the
    # engine and counts again.
    assert pipe["packets"] >= PIPELINE_PACKETS
    # Loose floors: any interpreter on any machine clears these unless the
    # hot path regressed by an order of magnitude.
    assert raw["events_per_s"] > 10_000
    assert pipe["packets_per_s"] > 50

"""Fig 15: switch packet-buffer occupancy due to request buffering.

Paper result: the mirror-based retransmission buffer (truncated
replication requests circulating in egress) occupies <1.5 KB even at
100 Gbps when nothing is lost; occupancy grows with the request loss rate
(~18 KB at 100 Gbps / 2% loss) — negligible against the tens of MB of ASIC
packet buffer.

We drive a write-per-packet app at 20-100 Gbps equivalent rates (1500 B
packets, so 100 Gbps ~ 8.3 Mpps; simulated for a few hundred
microseconds, enough for steady state at these RTTs) and record the peak
mirror-buffer occupancy, with request loss injected on the fabric.
"""

from __future__ import annotations

from repro import RedPlaneConfig, Simulator, deploy
from repro.apps.counter import SyncCounterApp
from repro.net.packet import Packet

from _bench_utils import emit, print_header, print_rows

#: Offered rates. The top point is 95 instead of the paper's 100 Gbps: a
#: piggybacked request stream for R Gbps of 1500 B packets needs slightly
#: more than R Gbps toward the store, and above ~97 Gbps the switch-store
#: link itself saturates in the simulator (one shared 100 GbE fabric),
#: inflating RTT and hence occupancy — a different effect than the one
#: this figure isolates.
#: Offered rates. Above ~85 Gbps of 1500 B packets the piggybacked request
#: stream (payload + headers) approaches the 100 GbE line rate of the
#: switch-store path and queueing delay, not request buffering, dominates;
#: the sweep stops below that regime (see EXPERIMENTS.md).
RATES_GBPS = [20, 40, 60, 80]
LOSS_RATES = [0.0, 0.01, 0.02]
PACKET_BYTES = 1500
DURATION_US = 400.0


def measure_peak_buffer(rate_gbps: float, loss: float) -> float:
    """Peak mirror-buffer occupancy (KB) at a given rate and loss.

    The retransmission timeout is set to 1 ms here: a lost request's copy
    occupies the buffer for a full timeout instead of one round trip, which
    is what makes loss visibly inflate occupancy (the paper's 1.5 KB ->
    18 KB growth implies a millisecond-scale timeout in the prototype).
    """
    sim = Simulator(seed=15)
    # Single-node store: chain replication would re-ship the piggybacked
    # stream across the fabric and saturate links at high rates, which is
    # orthogonal to the buffer question this figure isolates.
    dep = deploy(sim, SyncCounterApp, link_loss=loss, chain_length=1,
                 config=RedPlaneConfig(retransmit_timeout_us=1_000.0))
    # Destination in rack 2: the data path (agg -> tor2) and the
    # replication path (agg -> tor1, where the store head lives) use
    # disjoint links, as in the testbed, so neither saturates the other.
    e1, s11 = dep.bed.externals[0], dep.bed.servers[2]
    gap_us = PACKET_BYTES * 8 / (rate_gbps * 1000.0)
    n = int(DURATION_US / gap_us)
    for i in range(n):
        pkt = Packet.udp(e1.ip, s11.ip, 6000 + (i % 128), 7777,
                         payload=b"\x00" * (PACKET_BYTES - 42))
        sim.schedule(i * gap_us, e1.send, pkt)
    # Skip the flow-setup burst (all 128 flows acquire leases at once, an
    # artifact of the short run): measure the steady state like the
    # paper's one-second polling does.
    warmup = DURATION_US * 0.4
    sim.run(until=warmup)
    for agg in dep.bed.aggs:
        agg.peak_buffer_occupancy = agg.buffer_occupancy
    sim.run(until=DURATION_US + 3_000.0)
    peak = max(agg.peak_buffer_occupancy for agg in dep.bed.aggs)
    return peak / 1024.0


def test_fig15(run_once):
    def experiment():
        return {
            loss: [measure_peak_buffer(rate, loss) for rate in RATES_GBPS]
            for loss in LOSS_RATES
        }

    results = run_once(experiment)
    print_header("Fig 15 — peak packet-buffer occupancy from request "
                 "buffering (KB)")
    rows = []
    for i, rate in enumerate(RATES_GBPS):
        rows.append({
            "rate_gbps": rate,
            "0% loss": results[0.0][i],
            "1% loss": results[0.01][i],
            "2% loss": results[0.02][i],
        })
    print_rows(rows, ["rate_gbps", "0% loss", "1% loss", "2% loss"])
    emit("paper: <1.5 KB at 100 Gbps with no loss; ~18 KB at 100 Gbps/2% "
          "loss; tens-of-MB ASIC buffer is never stressed")

    # No-loss occupancy stays tiny (sub-1.5 KB of truncated headers, vs a
    # 22 MB ASIC buffer) and grows with rate.
    assert results[0.0][-1] < 1.5
    assert results[0.0][-1] > results[0.0][0]
    # Loss inflates occupancy (timed-out copies linger for a full RTO).
    for i, _rate in enumerate(RATES_GBPS):
        assert results[0.02][i] >= results[0.0][i]
    assert results[0.02][-1] > 1.2 * results[0.0][-1]
    assert results[0.02][-1] < 64.0  # still nothing vs a 22 MB buffer

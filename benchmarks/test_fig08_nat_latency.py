"""Fig 8: end-to-end RTT when RedPlane-NAT processes packets vs. others.

Paper result (per-packet RTT CDF over replayed traces):

* Switch-NAT and RedPlane-NAT share the same p50/p90 (7 / 8 us) — RedPlane
  adds no read-path overhead;
* their p99 is slow-path dominated (110 us vs 142 us; RedPlane adds the
  lease round trip to the new-flow install);
* FT Switch-NAT w/ controller: p99 185 us (management-network detour);
* server-based NATs: 7-14x higher median; FTMB plotted from its paper.
"""

from __future__ import annotations

from repro import RedPlaneConfig, Simulator, deploy
from repro.analysis import summarize
from repro.apps import NatApp, install_nat_routes
from repro.baselines import (
    ControllerFtBlock,
    ExternalController,
    PlainAppBlock,
    ServerNat,
    ftmb_sample_latencies,
    install_nf_routes,
    tunnel_to_nf,
)
from repro.net.packet import Packet, ip_aton
from repro.net.topology import build_testbed
from repro.switch.asic import SwitchASIC
from repro.workloads.harness import EchoResponder, RttProbe
from repro.workloads.traces import five_tuple_trace

from _bench_utils import emit, print_header, print_rows

NUM_PACKETS = 4000
NUM_FLOWS = 60
STAGGER_US = 300.0


def _trace(src_ip, dst_ip, seed=2):
    return five_tuple_trace(NUM_PACKETS, NUM_FLOWS, src_ip, dst_ip,
                            flow_stagger_us=STAGGER_US, seed=seed)


def run_switch_nat(block_factory=None):
    """Switch NAT on the testbed; block_factory wraps the app per switch."""
    sim = Simulator(seed=11)
    bed = build_testbed(sim, agg_factory=lambda s, n, ip: SwitchASIC(s, n, ip))
    install_nat_routes(bed)
    controller = ExternalController(sim)
    for agg in bed.aggs:
        if block_factory is None:
            agg.add_block(PlainAppBlock(agg, NatApp()))
        else:
            agg.add_block(block_factory(agg, controller))
    s11, e1 = bed.servers[0], bed.externals[0]
    EchoResponder(e1)
    probe = RttProbe(s11)
    probe.replay(_trace(s11.ip, e1.ip))
    sim.run_until_idle()
    return probe.rtts_us


def run_redplane_nat():
    sim = Simulator(seed=11)
    dep = deploy(sim, NatApp)
    install_nat_routes(dep.bed)
    s11, e1 = dep.bed.servers[0], dep.bed.externals[0]
    EchoResponder(e1)
    probe = RttProbe(s11)
    probe.replay(_trace(s11.ip, e1.ip))
    sim.run_until_idle()
    return probe.rtts_us


def run_server_nat(replicated: bool):
    sim = Simulator(seed=11)
    bed = build_testbed(sim)
    replica_ips = []
    if replicated:
        for i, name in enumerate(["nfr1", "nfr2"]):
            rep = ServerNat(sim, name, ip_aton(f"10.0.2.{60 + i}"))
            bed.topology.add_node(rep)
            bed.topology.connect(bed.tors[1], rep)
            bed.tors[1].table.add(rep.ip, 32, [bed.tors[1].ports[-1]])
            replica_ips.append(rep.ip)
    nf = ServerNat(sim, "nf", ip_aton("10.0.1.50"), replica_ips=replica_ips)
    bed.topology.add_node(nf)
    bed.topology.connect(bed.tors[0], nf)
    bed.tors[0].table.add(nf.ip, 32, [bed.tors[0].ports[-1]])
    install_nf_routes(bed, nf)

    s11, e1 = bed.servers[0], bed.externals[0]
    EchoResponder(e1)
    probe = RttProbe(s11)
    events = _trace(s11.ip, e1.ip)
    for event in events:  # steer outbound packets through the NF tunnel
        event.pkt = tunnel_to_nf(event.pkt, s11.ip, nf.ip)
        event.pkt.ip.identification = event.trace_id
    probe.replay(events)
    sim.run_until_idle()
    return probe.rtts_us


def test_fig08(run_once):
    def experiment():
        return {
            "Switch-NAT": run_switch_nat(),
            "FT Switch-NAT w/ controller": run_switch_nat(
                lambda agg, ctl: ControllerFtBlock(agg, NatApp(), ctl)
            ),
            "RedPlane-NAT": run_redplane_nat(),
            "Server-NAT": run_server_nat(replicated=False),
            "FT Server-NAT": run_server_nat(replicated=True),
            "FTMB-NAT (reported)": ftmb_sample_latencies(NUM_PACKETS, seed=1),
        }

    results = run_once(experiment)
    print_header("Fig 8 — end-to-end RTT, NAT implementations (us)")
    rows = []
    stats = {}
    for name, rtts in results.items():
        s = summarize(rtts)
        stats[name] = s
        rows.append({"implementation": name, "p50": s["p50"], "p90": s["p90"],
                     "p99": s["p99"], "n": int(s["count"])})
    print_rows(rows, ["implementation", "p50", "p90", "p99", "n"])
    emit("paper: Switch/RedPlane p50=7/7, p90=8/8, p99=110/142; "
          "controller p99=185; servers 7-14x median")

    from repro.analysis import ascii_cdf

    emit()
    emit(ascii_cdf(
        {
            "switch": results["Switch-NAT"],
            "redplane": results["RedPlane-NAT"],
            "server": results["Server-NAT"],
            "ftmb": results["FTMB-NAT (reported)"],
        },
        log_x=True,
    ))

    # Shape assertions (the paper's claims).
    assert stats["RedPlane-NAT"]["p50"] == stats["Switch-NAT"]["p50"]
    assert stats["RedPlane-NAT"]["p90"] <= stats["Switch-NAT"]["p90"] + 1.0
    assert stats["RedPlane-NAT"]["p99"] > stats["Switch-NAT"]["p99"]
    assert (
        stats["FT Switch-NAT w/ controller"]["p99"]
        > stats["RedPlane-NAT"]["p99"]
    )
    for server in ("Server-NAT", "FT Server-NAT", "FTMB-NAT (reported)"):
        ratio = stats[server]["p50"] / stats["Switch-NAT"]["p50"]
        assert ratio > 5.0, (server, ratio)
    assert stats["FT Server-NAT"]["p50"] > stats["Server-NAT"]["p50"]

"""RedPlane vs a NetChain-style in-switch store: latency vs fault tolerance.

NetChain (NSDI'18) keeps replicated key-value state in switch register
arrays and answers queries from the pipeline itself, so a store request
costs roughly half the RTT of RedPlane's server path (no server hop, no
DRAM lookup delay). The price is durability: register SRAM is volatile,
so a crash of the store switch loses every record. RedPlane deliberately
takes the other side of the tradeoff (§4, §8): state lives off-switch in
replicated servers, and with the write-ahead-log backend a hard crash of
the chain head replays every acknowledged write from disk.

This experiment runs the same Sync-Counter workload (worst case: one
synchronous store write per packet) against three store configurations
and reports both sides of the tradeoff:

* write-ack latency (the ``redplane.ack_rtt_us`` the engine measures
  from request emission to ack arrival), and
* how many flow records survive a hard crash + restart of the store.
"""

from __future__ import annotations

import os
import shutil
import tempfile

from repro import Simulator, deploy
from repro.analysis import summarize
from repro.apps.counter import SyncCounterApp
from repro.deploy import deploy_netchain
from repro.statestore.wal import WALBackend
from repro.workloads.harness import EchoResponder, RttProbe
from repro.workloads.traces import five_tuple_trace

from _bench_utils import emit, print_header, print_rows

NUM_PACKETS = 2000
NUM_FLOWS = 40
STAGGER_US = 300.0
SEED = 17


def _ack_rtts(sim):
    """Every retained write/lease ack RTT sample, across both engines."""
    samples = []
    for inst in sim.metrics.instruments("redplane.ack_rtt_us"):
        samples.extend(inst.samples)
    return samples


def _run_workload(sim, dep):
    s11, e1 = dep.bed.servers[0], dep.bed.externals[0]
    EchoResponder(e1)
    probe = RttProbe(s11)
    probe.replay(five_tuple_trace(NUM_PACKETS, NUM_FLOWS, s11.ip, e1.ip,
                                  flow_stagger_us=STAGGER_US, seed=SEED))
    sim.run_until_idle()
    return probe


def run_server_store(wal_dir=None):
    """RedPlane's server store (chain of three); WAL backend when given."""
    sim = Simulator(seed=SEED)
    backend_factory = None
    if wal_dir is not None:
        backend_factory = lambda name: WALBackend(os.path.join(wal_dir, name))
    dep = deploy(sim, SyncCounterApp, backend_factory=backend_factory)
    _run_workload(sim, dep)
    head = dep.stores[0]
    before = len(head.backend.records)
    head.crash()
    head.restart()
    after = len(head.backend.records)
    return {"acks": _ack_rtts(sim), "records": before, "survive": after}


def run_netchain_store():
    """The in-switch store: tor1's pipeline answers from register arrays."""
    sim = Simulator(seed=SEED)
    dep = deploy_netchain(sim, SyncCounterApp)
    _run_workload(sim, dep)
    backend = dep.netchain.backend
    before = len(backend.records)
    backend.wipe()  # the switch crashes: register SRAM is gone
    backend.recover()
    after = len(backend.records)
    return {"acks": _ack_rtts(sim), "records": before, "survive": after}


def test_netchain_tradeoff(run_once):
    def experiment():
        wal_dir = tempfile.mkdtemp(prefix="repro-bench-wal-")
        try:
            return {
                "RedPlane (memory)": run_server_store(),
                "RedPlane (WAL)": run_server_store(wal_dir=wal_dir),
                "NetChain in-switch": run_netchain_store(),
            }
        finally:
            shutil.rmtree(wal_dir, ignore_errors=True)

    results = run_once(experiment)
    print_header("RedPlane vs NetChain store — write-ack RTT and crash "
                 "survival (us)")
    rows = []
    stats = {}
    for name, r in results.items():
        s = summarize(r["acks"])
        stats[name] = s
        rows.append({
            "store": name, "p50": s["p50"], "p90": s["p90"],
            "p99": s["p99"], "acks": int(s["count"]),
            "records": r["records"], "survive_crash": r["survive"],
        })
    print_rows(rows, ["store", "p50", "p90", "p99", "acks", "records",
                      "survive_crash"])
    emit("NetChain answers from the pipeline (sub-server-RTT acks) but a "
         "switch crash")
    emit("loses every record; RedPlane pays the server round trip and the "
         "WAL backend")
    emit("replays all acknowledged writes after a hard crash of the chain "
         "head.")

    # Shape assertions (the tradeoff both papers claim).
    mem, wal, nc = (stats["RedPlane (memory)"], stats["RedPlane (WAL)"],
                    stats["NetChain in-switch"])
    # The in-switch store answers faster than the server chain.
    assert nc["p50"] < mem["p50"], (nc["p50"], mem["p50"])
    assert nc["p99"] < mem["p99"], (nc["p99"], mem["p99"])
    # The WAL's durability costs nothing on the simulated request path
    # (persistence is modeled off the ack critical path).
    assert abs(wal["p50"] - mem["p50"]) < 2.0, (wal["p50"], mem["p50"])
    # Fault tolerance: only the WAL store survives a hard crash. All
    # three stores saw the same trace, so they hold the same records.
    counts = {r["records"] for r in results.values()}
    assert len(counts) == 1 and counts.pop() > 0, counts
    assert results["RedPlane (WAL)"]["survive"] == \
        results["RedPlane (WAL)"]["records"]
    assert results["RedPlane (memory)"]["survive"] == 0
    assert results["NetChain in-switch"]["survive"] == 0

"""Shared machinery for the figure/table reproduction benchmarks.

Every file in this directory regenerates one table or figure of the
paper's evaluation (§7): it runs the experiment on the simulated testbed,
prints the same rows/series the paper reports, and asserts the *shape*
(who wins, by roughly what factor, where crossovers fall). Absolute
numbers come from a simulator calibrated per DESIGN.md, not the authors'
hardware.

Run with ``pytest benchmarks/ --benchmark-only``; the printed tables are
collected into EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))




@pytest.fixture
def run_once(benchmark):
    """Wrap a whole-experiment callable so pytest-benchmark times one run."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner

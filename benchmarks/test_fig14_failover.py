"""Fig 14: end-to-end TCP throughput during switch failover and recovery.

Paper result: iperf through a RedPlane NAT sustains its goodput; when the
owning aggregation switch fails, goodput collapses, then recovers within
about a second (0.9-1.0 s: failure detection/rerouting plus the remaining
lease time); when the switch comes back and ECMP shifts flows to it again,
there is a second, similar dip. Without RedPlane, the TCP connection is
broken for good (the NAT translation no longer exists anywhere).

Scaled-down run: the iperf hosts attach over 1 Gbps links (so a Python
event loop can carry the multi-second timeline); timing — detection delay,
lease period, recovery — is unscaled.
"""

from __future__ import annotations

from repro import RedPlaneConfig, Simulator, deploy
from repro.apps import NatApp, install_nat_routes
from repro.baselines import PlainAppBlock
from repro.net.topology import build_testbed
from repro.switch.asic import SwitchASIC
from repro.workloads.tcp import TcpReceiver, TcpSender

from _bench_utils import emit, print_header, print_rows

FAIL_AT_US = 2_000_000.0
RECOVER_AT_US = 5_000_000.0
END_US = 8_000_000.0
DETECT_US = 350_000.0
LEASE_US = 1_000_000.0
BUCKET_US = 100_000.0


def _attach_iperf(sim, bed):
    """Add 1 Gbps iperf endpoints: sender in rack 1, receiver at core 1."""
    sender = TcpSender(sim, "iperf-c", bed.servers[0].ip + 100, dst_ip=0,
                       segment_bytes=16 * 1024, goodput_bucket_us=BUCKET_US,
                       max_cwnd=64.0)
    bed.topology.add_node(sender)
    bed.topology.connect(bed.tors[0], sender, bandwidth_gbps=1.0)
    bed.tors[0].table.add(sender.ip, 32, [bed.tors[0].ports[-1]])
    receiver = TcpReceiver(sim, "iperf-s", bed.externals[0].ip + 100)
    bed.topology.add_node(receiver)
    bed.topology.connect(bed.cores[0], receiver, bandwidth_gbps=1.0)
    bed.cores[0].table.add(receiver.ip, 32, [bed.cores[0].ports[-1]])
    peer_ports = [p for p in bed.cores[1].ports
                  if p.link and p.link.other_end(p).node is bed.cores[0]]
    bed.cores[1].table.add(receiver.ip, 32, peer_ports)
    sender.dst_ip = receiver.ip
    return sender, receiver


def run_redplane(inject_failure: bool):
    sim = Simulator(seed=14)
    dep = deploy(sim, NatApp, config=RedPlaneConfig(lease_period_us=LEASE_US))
    install_nat_routes(dep.bed)
    sender, receiver = _attach_iperf(sim, dep.bed)
    sender.start()
    sim.run(until=FAIL_AT_US)
    owner = max(dep.engines.values(), key=lambda e: e.stats["app_packets"])
    if inject_failure:
        dep.bed.topology.fail_node(owner.switch, detect_delay_us=DETECT_US)
        sim.run(until=RECOVER_AT_US)
        dep.bed.topology.recover_node(owner.switch, detect_delay_us=DETECT_US)
    sim.run(until=END_US)
    sender.stop()
    sim.run(until=END_US + 500_000)
    return sender.goodput_series_gbps(END_US), receiver


def run_no_redplane():
    """Same failure without RedPlane: the NAT state dies with the switch."""
    sim = Simulator(seed=14)
    bed = build_testbed(sim, agg_factory=lambda s, n, ip: SwitchASIC(s, n, ip))
    install_nat_routes(bed)
    blocks = {}
    for agg in bed.aggs:
        block = PlainAppBlock(agg, NatApp())
        agg.add_block(block)
        blocks[agg.name] = block
    sender, receiver = _attach_iperf(sim, bed)
    sender.start()
    sim.run(until=FAIL_AT_US)
    owner = max(bed.aggs, key=lambda a: blocks[a.name].packets)
    bed.topology.fail_node(owner, detect_delay_us=DETECT_US)
    sim.run(until=END_US)
    sender.stop()
    sim.run(until=END_US + 500_000)
    return sender.goodput_series_gbps(END_US), receiver


def _recovery_time_s(series, fail_at_s, healthy):
    """Seconds from the failure until goodput is back above 50% healthy."""
    for t, gbps in series:
        if t > fail_at_s and gbps > 0.5 * healthy:
            return t - fail_at_s
    return float("inf")


def test_fig14(run_once):
    def experiment():
        baseline, _ = run_redplane(inject_failure=False)
        with_rp, _ = run_redplane(inject_failure=True)
        without, _ = run_no_redplane()
        return baseline, with_rp, without

    baseline, with_rp, without = run_once(experiment)

    print_header("Fig 14 — TCP goodput during failover and recovery (Gbps)")
    rows = []
    for (t, base), (_t1, rp), (_t2, no) in zip(baseline, with_rp, without):
        if abs(t * 10 - round(t * 10)) < 1e-9 and round(t * 10) % 2 == 0:
            rows.append({"time_s": t, "no failure": base,
                         "failure + RedPlane": rp, "failure, no RedPlane": no})
    print_rows(rows, ["time_s", "no failure", "failure + RedPlane",
                      "failure, no RedPlane"])

    healthy = max(g for t, g in baseline if 0.5 < t < 2.0)
    fail_s = FAIL_AT_US / 1e6
    recover_s = RECOVER_AT_US / 1e6

    dip = min(g for t, g in with_rp if fail_s < t < fail_s + 0.3)
    recovery = _recovery_time_s(with_rp, fail_s, healthy)
    second_dip_recovery = _recovery_time_s(
        [(t, g) for t, g in with_rp if t > recover_s + 0.05], recover_s, healthy
    )
    from repro.analysis import ascii_timeline

    emit()
    emit("failure + RedPlane, as a timeline (every 5th bucket):")
    emit(ascii_timeline(
        [(t, g) for i, (t, g) in enumerate(with_rp) if i % 5 == 0],
        events={2.0: "switch failed", 5.0: "switch recovered"},
    ))
    emit(f"healthy={healthy:.2f} Gbps; failover dip={dip:.2f}; "
          f"recovery after failure={recovery:.2f}s; "
          f"after switch-recovery disruption={second_dip_recovery + recover_s - recover_s:.2f}s")
    emit("paper: recovery within ~0.9-1.0 s at both the failure and the "
          "recovery events; without RedPlane the connection never recovers")

    assert healthy > 0.5
    assert dip < 0.1 * healthy                 # the outage is real
    assert recovery < 1.6                       # "within a second" (+detect)
    # The switch-recovery event also disrupts briefly, then recovers.
    assert second_dip_recovery < 1.6
    # Without RedPlane the flow stays dead after the failure.
    dead_tail = [g for t, g in without if t > fail_s + 1.5]
    assert max(dead_tail) < 0.1 * healthy

"""Shard scaling gate (wall clock, not a paper figure).

Runs the million-flow campaign at 1 and 4 workers on a small parameter
set and asserts the critical-path throughput scales by **> 1.8x** — the
same gate the committed ``BENCH_shard.json`` curve documents at full
size. The committed file itself is validated structurally (4-point
curve, 10M-flow section, the >1.8x figure) so a stale or hand-edited
artifact fails here rather than misleading a reader.

Critical-path methodology: shards run sequentially in one process
(CI pins cores), and ``pps = packets / max(per-shard isolated wall)``.
That is honest *because* the committed shard plan proves the flow
partition's cross-shard boundary set empty — no shard ever waits on
another, so per-shard isolated wall is what a dedicated core would see
(see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import json
import os

from repro.shard.bench import BENCH_PATH, bench_point

#: Small enough for CI, large enough that per-shard simulation work
#: dominates the shared (ghost) overhead.
PACKETS = 8_000
POPULATION = 200_000
#: The scaling gate at 4 workers, matching the committed curve's claim.
TARGET_SPEEDUP_4W = 1.8


def test_perf_shard_scaling(run_once):
    def experiment():
        one = bench_point(1, packets=PACKETS, population=POPULATION)
        four = bench_point(4, packets=PACKETS, population=POPULATION)
        return one, four

    one, four = run_once(experiment)

    speedup = four["pps_critical_path"] / one["pps_critical_path"]
    print(f"shard scaling: 1w {one['pps_critical_path']:.0f} pps, "
          f"4w {four['pps_critical_path']:.0f} pps ({speedup:.2f}x)")
    assert speedup > TARGET_SPEEDUP_4W, (
        f"4-worker critical-path speedup {speedup:.2f}x <= "
        f"{TARGET_SPEEDUP_4W}x"
    )
    # Every shard saw real work (the hash split is not degenerate).
    assert all(f > 0 for f in four["flows_per_shard"])
    assert sum(four["flows_per_shard"]) == sum(one["flows_per_shard"])


def test_committed_bench_shard_artifact():
    """BENCH_shard.json carries what the README/PERFORMANCE.md claim."""
    assert os.path.exists(BENCH_PATH), \
        "BENCH_shard.json missing (run 'repro.tools shard bench --record')"
    with open(BENCH_PATH) as fh:
        doc = json.load(fh)
    curve = doc["curve"]
    workers = [p["workers"] for p in curve]
    assert len(curve) >= 4 and workers == sorted(set(workers))
    by_workers = {p["workers"]: p for p in curve}
    assert {1, 4} <= set(by_workers)
    assert by_workers[4]["speedup_vs_1_worker"] > TARGET_SPEEDUP_4W
    # The 10M-flow run completed end to end.
    tm = doc["ten_million"]
    assert tm["population"] >= 10_000_000
    assert tm["flows_injected"] > 0
    assert doc["cpus"] >= 1 and "critical-path" in doc["methodology"]
